"""Accuracy-vs-area / defect-rate curve driver for compiled workloads.

One curve run takes a workload spec (typically a compiled classifier)
and produces a schema-versioned **curve report** answering the
question the ambipolar-CNFET classification papers pose: *how much
accuracy does a programmed array keep as manufacturing defect rates
rise, and what does the implementation cost in area per technology?*

The run is three passes, all on existing engines:

1. **Clean functional pass** — the compiled (minimized) cover and the
   raw generated cover are evaluated together over a deterministic
   LFSR vector stream on the batched :class:`CoverArena` path
   (:meth:`repro.store.service.SynthesisService.evaluate_batch`), and
   for classifiers additionally over the bundled dataset's rows; the
   report records the cross-cover agreement (1.0 unless the compile is
   broken) and the model's train/test accuracy.

2. **Defect Monte Carlo** — per defect-rate point, the batched yield
   engine (:func:`repro.robustness.yield_engine.estimate_yield`) runs
   under the curve's primary technology with the workload as its
   benchmark; raw/repaired yields arrive with Wilson CIs.

3. **Accuracy projection** — classification accuracy of a fielded
   array: a repaired array classifies at clean test accuracy, an
   irreparable one is modeled as a coin flip (0.5), so
   ``expected = acc * y + 0.5 * (1 - y)`` — monotone in the yield
   ``y``, letting the Wilson interval transfer directly onto the
   accuracy axis.  Non-classifier cells report the exact-function
   yield plus the graceful-degradation correct fraction instead.

The finished report is one content-addressed artifact (kind
``workload_curve``) keyed by the settings **and the model digest** (on
top of the ambient backend and technology digests every key carries),
so retraining a model or switching kernels invalidates exactly the
affected curves; cold and warm runs render byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import perf
from repro import workloads
from repro.workloads import classify, datasets

#: Curve-report schema identifier + version (bump on shape changes).
CURVE_SCHEMA = "repro.workload_curve"
CURVE_VERSION = 1


@dataclass(frozen=True)
class CurveSettings:
    """Everything that defines one accuracy/defect curve run.

    Attributes
    ----------
    spec:
        Workload spec (``clf-majority9-perceptron``, ``add4``, ...),
        with or without the ``workload:`` prefix.
    techs:
        Technologies for the area axis; the first is the primary one
        the yield Monte Carlo runs under.
    rates:
        Defect-rate sweep points (``p_stuck_off`` per device).
    stuck_on_ratio:
        ``p_stuck_on`` is this fraction of ``p_stuck_off`` at every
        point (default mirrors the yield engine's 0.0006/0.0014).
    samples:
        Monte Carlo samples per rate point.
    seed:
        Base seed for the yield sweep and the LFSR agreement stream.
    stream_words:
        64-vector words of the LFSR agreement stream (4096 words =
        262144 vectors per arena pass; raise for the "millions per
        pass" regime).
    spare_rows, spare_cols:
        Fabric redundancy available to the repair pass.
    """

    spec: str
    techs: Tuple[str, ...] = ("cnfet",)
    rates: Tuple[float, ...] = (0.0005, 0.001, 0.002, 0.004)
    stuck_on_ratio: float = 0.43
    samples: int = 400
    seed: int = 0
    stream_words: int = 4096
    spare_rows: int = 2
    spare_cols: int = 1

    def __post_init__(self):
        object.__setattr__(self, "spec", workloads.strip_prefix(self.spec))
        workloads.parse_workload(self.spec)  # fail fast on bad specs
        if not self.techs:
            raise ValueError("need at least one technology")
        if not self.rates:
            raise ValueError("need at least one defect-rate point")
        if any(not 0.0 <= rate < 1.0 for rate in self.rates):
            raise ValueError("defect rates must lie in [0, 1)")
        if not 0.0 <= self.stuck_on_ratio <= 1.0:
            raise ValueError("stuck_on_ratio must lie in [0, 1]")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if self.stream_words < 1:
            raise ValueError("stream_words must be >= 1")

    def to_json(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "techs": list(self.techs),
            "rates": list(self.rates),
            "stuck_on_ratio": self.stuck_on_ratio,
            "samples": self.samples,
            "seed": self.seed,
            "stream_words": self.stream_words,
            "spare_rows": self.spare_rows,
            "spare_cols": self.spare_cols,
        }


def _agreement(masks_a: List[int], masks_b: List[int]) -> float:
    """Fraction of vector positions on which two mask rows agree."""
    if not masks_a:
        return 1.0
    same = sum(1 for a, b in zip(masks_a, masks_b) if a == b)
    return same / len(masks_a)


def _clean_block(settings: CurveSettings, info: dict,
                 raw, compiled) -> Dict[str, Any]:
    """Functional agreement + (for classifiers) dataset accuracy."""
    from repro.store.service import get_service
    from repro.testgen.lfsr import stream_spec

    spec = stream_spec(max(2, compiled.n_inputs), settings.stream_words,
                       seed=settings.seed)
    with perf.timer("workload.curve.stream"):
        rows = get_service().evaluate_batch([compiled.on_set, raw.on_set],
                                            stream=spec)
    vectors = settings.stream_words * 64
    perf.count("workload.curve.stream_vectors", vectors)
    block: Dict[str, Any] = {
        "stream": {"spec": spec, "vectors": vectors,
                   "agreement": round(_agreement(rows[0], rows[1]), 6)},
    }
    if info["family"] == "clf":
        dataset = datasets.get_dataset(info["dataset"])
        model = workloads._model_of(info["spec"])
        dataset_stream = datasets.dataset_stream_spec(dataset.name)
        with perf.timer("workload.curve.dataset"):
            masks = get_service().evaluate_batch([compiled.on_set],
                                                 stream=dataset_stream)[0]
        agree = sum(1 for (x, _y), mask in zip(dataset.rows, masks)
                    if mask == model.predict(x))
        block["dataset"] = dict(dataset.stats())
        block["dataset"].update({
            "train_accuracy": round(
                classify.model_accuracy(model, dataset.train), 6),
            "test_accuracy": round(
                classify.model_accuracy(model, dataset.test), 6),
            "row_agreement": round(agree / len(dataset.rows), 6),
        })
    return block


def _technology_block(settings: CurveSettings,
                      compiled) -> List[Dict[str, Any]]:
    """Area of the compiled array on every requested technology."""
    from repro.core.area import pla_area
    from repro.tech import resolve_tech

    dims = (compiled.n_inputs, compiled.n_outputs,
            compiled.on_set.n_cubes())
    entries = []
    for spec in settings.techs:
        descriptor = resolve_tech(spec)
        entries.append({
            "tech": descriptor.name,
            "digest": descriptor.digest(),
            "area_l2": pla_area(descriptor, *dims),
            "cell_area_l2": descriptor.cell_area_l2,
        })
    return entries


def _accuracy_projection(clean_accuracy: Optional[float],
                         report_json: dict) -> Dict[str, Any]:
    """Map a yield report onto the accuracy axis (see module doc)."""
    y = report_json["repaired_yield"]
    y_lo, y_hi = report_json["repaired_ci95"]
    degraded = report_json["degraded_mean_correct"]
    block: Dict[str, Any] = {
        "functional_yield": y,
        "functional_ci95": [y_lo, y_hi],
        "expected_correct_fraction": round(
            y + (1.0 - y) * degraded, 6),
    }
    if clean_accuracy is not None:
        def project(value: float) -> float:
            return round(clean_accuracy * value + 0.5 * (1.0 - value), 6)
        block["expected_accuracy"] = project(y)
        block["expected_accuracy_ci95"] = [project(y_lo), project(y_hi)]
    return block


def run_curve(settings: CurveSettings, jobs: int = 1) -> Dict[str, Any]:
    """Run the full curve and return the validated report dict.

    Served through the content-addressed store (kind
    ``workload_curve``) keyed on the settings plus the workload's
    model digest; the ambient kernel backend and primary-technology
    digest separate keys as for every artifact.  The report is
    bit-identical for any ``jobs`` value and across cold/warm runs.
    """
    from repro import tech as tech_mod
    from repro.analysis.export import validate_curve_report
    from repro.robustness.yield_engine import YieldSettings, estimate_yield
    from repro.store.service import get_service

    info = workloads.parse_workload(settings.spec)
    digest = workloads.model_digest(settings.spec)
    request = {"settings": settings.to_json(), "model_digest": digest}

    def compute() -> Dict[str, Any]:
        raw = workloads.raw_function(settings.spec)
        compiled = workloads.workload_function(settings.spec)
        clean = _clean_block(settings, info, raw, compiled)
        clean_accuracy = clean.get("dataset", {}).get("test_accuracy")

        points = []
        for rate in settings.rates:
            ysettings = YieldSettings(
                benchmark=workloads.PREFIX + settings.spec,
                samples=settings.samples, seed=settings.seed,
                p_stuck_off=rate,
                p_stuck_on=rate * settings.stuck_on_ratio,
                spare_rows=settings.spare_rows,
                spare_cols=settings.spare_cols,
                tech=settings.techs[0])
            with perf.timer("workload.curve.point"):
                report = estimate_yield(ysettings, jobs=jobs)
            report_json = report.to_json()
            points.append({
                "p_stuck_off": rate,
                "p_stuck_on": rate * settings.stuck_on_ratio,
                "yield": report_json,
                "accuracy": _accuracy_projection(clean_accuracy,
                                                 report_json),
            })
        perf.count("workload.curve.points", len(points))

        model_block = {"spec": settings.spec, "family": info["family"],
                       "digest": digest}
        if info["family"] == "clf":
            model_block["dataset"] = info["dataset"]
            model_block["algorithm"] = info["algorithm"]
        return {
            "schema": CURVE_SCHEMA,
            "version": CURVE_VERSION,
            "settings": settings.to_json(),
            "model": model_block,
            "function": {
                "name": compiled.name,
                "inputs": compiled.n_inputs,
                "outputs": compiled.n_outputs,
                "raw_products": raw.on_set.n_cubes(),
                "products": compiled.on_set.n_cubes(),
                "literals": compiled.on_set.n_literals(),
            },
            "clean": clean,
            "technologies": _technology_block(settings, compiled),
            "points": points,
        }

    # the primary technology scopes the whole run: yield sweeps, area
    # entries for techs[0], and the artifact key's tech digest
    with tech_mod.use(settings.techs[0]):
        report = get_service().get_or_compute("workload_curve", request,
                                              compute)
    return validate_curve_report(report)


__all__ = ["CURVE_SCHEMA", "CURVE_VERSION", "CurveSettings", "run_curve"]
