"""Workload generator subsystem: arithmetic cells and ML classifiers.

This package turns the repo's three MCNC functions into an open-ended
workload axis: parameterized **arithmetic cells** (ripple/carry adders,
magnitude comparators, popcount — :mod:`repro.workloads.arith`) and
**compiled classifiers** (threshold / decision-list models trained
deterministically on bundled datasets —
:mod:`repro.workloads.classify`) are generated as multi-output covers
and flow through the existing minimize → map → place/route → yield
pipeline unchanged.

Workloads are addressed by a **spec string**, always carrying the
``workload:`` prefix in benchmark positions:

=====================  ==============================================
spec                    cell
=====================  ==============================================
``add<w>``             ``w``-bit adder (``a+b``), outputs ``s..,cout``
``addc<w>``            the same with a carry-in input
``cmp<w>``             magnitude comparator (lt, eq, gt outputs)
``lt<w>``/``eq<w>``/   single-relation comparators
``gt<w>``
``pop<w>``             ``w``-input popcount
``clf-<ds>-<algo>``    classifier: dataset x {perceptron, dlist}
=====================  ==============================================

:func:`build_workload` generates the *raw* function (with its
structural OFF-set pre-seeded); :func:`workload_function` returns the
**compiled** function whose ON-set is the minimized cover (served
through the content-addressed store, so every process pays espresso
once per spec).  :mod:`repro.bench.mcnc` resolves any benchmark name
starting with ``workload:`` through this module, which is what lets
the yield engine, the characterizer, ``repro suite`` and the serve
layer accept workload cells wherever they accept ``max46``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproInputError
from repro.logic.function import BooleanFunction
from repro.workloads import arith, classify, datasets

#: Benchmark-name prefix routing through this registry.
PREFIX = "workload:"

#: Generator width guardrails: two-level arithmetic covers grow
#: exponentially in width, so reject specs whose *raw* cover would be
#: astronomically large before trying to build it.
MAX_ADDER_WIDTH = 10
MAX_COMPARE_WIDTH = 12
MAX_POPCOUNT_WIDTH = 12

_ARITH_RE = re.compile(r"^(add|addc|cmp|lt|eq|gt|pop)(\d+)$")
_CLF_RE = re.compile(r"^clf-([a-z0-9_]+)-(perceptron|dlist)$")

#: Classifier training algorithms.
ALGORITHMS = ("perceptron", "dlist")


def strip_prefix(name: str) -> str:
    """Drop a leading ``workload:`` if present."""
    return name[len(PREFIX):] if name.startswith(PREFIX) else name


def is_workload(name: str) -> bool:
    """True when a benchmark name routes through this registry."""
    return name.startswith(PREFIX)


def parse_workload(spec: str) -> dict:
    """Parse a spec string into its JSON-shaped description.

    Raises :class:`~repro.errors.ReproInputError` on unknown or
    out-of-range specs (the CLI maps it to exit code 2).
    """
    spec = strip_prefix(spec)
    match = _ARITH_RE.match(spec)
    if match:
        family, width_str = match.group(1), match.group(2)
        width = int(width_str)
        limit = {"add": MAX_ADDER_WIDTH, "addc": MAX_ADDER_WIDTH,
                 "pop": MAX_POPCOUNT_WIDTH}.get(family, MAX_COMPARE_WIDTH)
        if not 1 <= width <= limit:
            raise ReproInputError(
                f"workload {spec!r}: width must be in 1..{limit} "
                f"for family {family!r}")
        return {"spec": spec, "family": family, "width": width}
    match = _CLF_RE.match(spec)
    if match:
        dataset, algo = match.group(1), match.group(2)
        if dataset not in datasets.dataset_names():
            raise ReproInputError(
                f"workload {spec!r}: unknown dataset {dataset!r} "
                f"(bundled: {', '.join(datasets.dataset_names())})")
        return {"spec": spec, "family": "clf", "dataset": dataset,
                "algorithm": algo}
    raise ReproInputError(
        f"unknown workload spec {spec!r} (expected add<w>, addc<w>, "
        f"cmp<w>, lt<w>, eq<w>, gt<w>, pop<w> or clf-<dataset>-<algo>)")


def train_model(dataset_name: str, algorithm: str):
    """Train the deterministic model of a classifier spec."""
    dataset = datasets.get_dataset(dataset_name)
    if algorithm == "perceptron":
        return classify.train_threshold(dataset)
    if algorithm == "dlist":
        return classify.train_decision_list(dataset)
    raise ReproInputError(f"unknown algorithm {algorithm!r}")


def build_workload(spec: str) -> BooleanFunction:
    """Generate the raw (unminimized) function of a workload spec.

    Pure and deterministic: the returned function — including its
    pre-seeded structural OFF-set — depends only on the spec string.
    """
    info = parse_workload(spec)
    family = info["family"]
    if family in ("add", "addc"):
        return arith.adder_function(info["width"],
                                    carry_in=family == "addc")
    if family == "cmp":
        return arith.comparator_function(info["width"])
    if family in ("lt", "eq", "gt"):
        return arith.comparator_function(info["width"], (family,))
    if family == "pop":
        return arith.popcount_function(info["width"])
    model = train_model(info["dataset"], info["algorithm"])
    return classify.compile_classifier(
        model, name=PREFIX + info["spec"])


def oracle_mask(spec: str, minterm: int) -> int:
    """The integer-arithmetic / direct-model oracle of a spec.

    The output bitmask the workload's cover must produce on
    ``minterm`` — what the differential tests and ``repro workload
    eval`` compare against.
    """
    info = parse_workload(spec)
    if info["family"] == "clf":
        return _model_of(info["spec"]).predict(minterm)
    return arith.ORACLES[info["family"]](info["width"], minterm)


#: Per-process memos: raw functions, compiled functions, trained models.
_RAW_CACHE: Dict[str, BooleanFunction] = {}
_COMPILED_CACHE: Dict[Tuple[str, str, str], BooleanFunction] = {}
_MODEL_CACHE: Dict[str, object] = {}


def _model_of(spec: str):
    model = _MODEL_CACHE.get(spec)
    if model is None:
        info = parse_workload(spec)
        if info["family"] != "clf":
            raise ReproInputError(f"workload {spec!r} is not a classifier")
        model = _MODEL_CACHE[spec] = train_model(info["dataset"],
                                                 info["algorithm"])
    return model


def raw_function(spec: str) -> BooleanFunction:
    """Memoized :func:`build_workload`."""
    spec = strip_prefix(spec)
    parse_workload(spec)
    function = _RAW_CACHE.get(spec)
    if function is None:
        function = _RAW_CACHE[spec] = build_workload(spec)
    return function


def workload_function(spec: str) -> BooleanFunction:
    """The compiled function: minimized ON-set, served via the store.

    The minimized cover is a content-addressed artifact (the service's
    ``minimize`` kind keyed by the raw cover), so espresso runs once
    per (spec, backend, technology) fleet-wide; the per-process memo
    is additionally keyed by backend and technology digest so a forced
    backend flip inside one process never sees a stale compile.
    """
    from repro import kernels
    from repro.store.service import get_service
    from repro.tech import active_digest

    spec = strip_prefix(spec)
    parse_workload(spec)
    memo_key = (spec, kernels.backend(), active_digest())
    function = _COMPILED_CACHE.get(memo_key)
    if function is None:
        raw = raw_function(spec)
        cover = get_service().minimize(raw)
        function = BooleanFunction(cover, name=PREFIX + spec,
                                   input_labels=raw.input_labels,
                                   output_labels=raw.output_labels)
        function._off_set = raw.off_set
        _COMPILED_CACHE[memo_key] = function
    return function


def model_digest(spec: str) -> str:
    """Content digest of what defines a workload's function.

    Classifiers hash their trained model (weights / rules); arithmetic
    cells hash the parsed spec.  Curve-report store keys carry this, so
    a trainer change invalidates exactly the affected artifacts.
    """
    from repro.store.keys import digest_of

    info = parse_workload(spec)
    if info["family"] == "clf":
        return digest_of(_model_of(info["spec"]).to_json())
    return digest_of(info)


#: Default registry shown by ``repro workload ls``: one spec per
#: family at a representative size, plus the bundled classifiers
#: paired with the algorithm that actually learns them.
DEFAULT_WORKLOADS: Tuple[str, ...] = (
    "add2", "add4", "add8", "addc4",
    "cmp4", "cmp8", "gt8", "eq8",
    "pop4", "pop8",
    "clf-majority9-perceptron", "clf-blobs12-perceptron",
    "clf-mux6-dlist",
)


def list_workloads() -> List[dict]:
    """Spec + parsed description for every default workload."""
    return [parse_workload(spec) for spec in DEFAULT_WORKLOADS]


def clear_caches() -> None:
    """Reset the per-process memos (tests)."""
    _RAW_CACHE.clear()
    _COMPILED_CACHE.clear()
    _MODEL_CACHE.clear()


__all__ = ["ALGORITHMS", "DEFAULT_WORKLOADS", "PREFIX", "build_workload",
           "clear_caches", "is_workload", "list_workloads",
           "model_digest", "oracle_mask", "parse_workload",
           "raw_function", "strip_prefix", "train_model",
           "workload_function"]
