"""Bundled example datasets for the classifier workloads.

Each dataset is a small, fully deterministic binary-feature
classification problem: rows are ``(x, y)`` with ``x`` an integer
minterm over ``n_features`` inputs (bit ``i`` = feature ``i``) and
``y`` a 0/1 label.  Generation is a pure function of the dataset name
— seeded :class:`random.Random`, no ambient state — so digests, store
keys and trained models are stable across processes and platforms.

Datasets double as **vector streams**: :func:`dataset_stream_spec`
describes "the rows of dataset D, tiled N times" as a compact
JSON-shaped spec, and :func:`repro.testgen.lfsr.stream_minterms`
dispatches specs of kind ``dataset`` here — so the batched evaluation
arena, the store's ``eval_batch`` kind and the serve layer can all be
driven from dataset rows exactly like they are from LFSR streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple


@dataclass(frozen=True)
class Dataset:
    """One bundled dataset, already split train/test.

    ``train`` and ``test`` are ``(minterm, label)`` lists; the split is
    part of the deterministic generation, so every consumer sees the
    same partition.
    """

    name: str
    n_features: int
    train: Tuple[Tuple[int, int], ...]
    test: Tuple[Tuple[int, int], ...]

    @property
    def rows(self) -> Tuple[Tuple[int, int], ...]:
        """All rows, train then test."""
        return self.train + self.test

    def stats(self) -> dict:
        return {"name": self.name, "features": self.n_features,
                "train_rows": len(self.train), "test_rows": len(self.test)}


def _split(rows: List[Tuple[int, int]], rng: random.Random,
           test_fraction: float = 0.25) -> Tuple[tuple, tuple]:
    """Deterministic shuffled train/test split."""
    rows = list(rows)
    rng.shuffle(rows)
    n_test = max(1, int(len(rows) * test_fraction))
    return tuple(rows[n_test:]), tuple(rows[:n_test])


def _majority9() -> Dataset:
    """9-bit majority vote: exhaustive, linearly separable."""
    rows = [(m, 1 if bin(m).count("1") >= 5 else 0) for m in range(512)]
    train, test = _split(rows, random.Random(0x6d617931))
    return Dataset("majority9", 9, train, test)


def _blobs12() -> Dataset:
    """Two noisy clusters of 12-bit vectors around complementary
    prototypes (hamming-ball classes; linearly separable in the mean).
    """
    rng = random.Random(0x626c6f62)
    proto = {1: 0b111111000000, 0: 0b000000111111}
    rows = []
    for _ in range(320):
        label = rng.randrange(2)
        x = proto[label]
        for bit in range(12):
            if rng.random() < 0.12:
                x ^= 1 << bit
        rows.append((x, label))
    train, test = _split(rows, rng)
    return Dataset("blobs12", 12, train, test)


def _mux6() -> Dataset:
    """6-input multiplexer: 2 select bits choose one of 4 data bits.

    Exhaustive (64 rows) and *not* linearly separable — the decision-
    list learner's bundled target.  Layout: selects at bits 0..1,
    data at bits 2..5.
    """
    rows = []
    for m in range(64):
        sel = m & 0b11
        rows.append((m, (m >> (2 + sel)) & 1))
    train, test = _split(rows, random.Random(0x6d757836))
    return Dataset("mux6", 6, train, test)


_BUILDERS: Dict[str, Callable[[], Dataset]] = {
    "majority9": _majority9,
    "blobs12": _blobs12,
    "mux6": _mux6,
}

_CACHE: Dict[str, Dataset] = {}


def dataset_names() -> List[str]:
    """Names of every bundled dataset, sorted."""
    return sorted(_BUILDERS)


def get_dataset(name: str) -> Dataset:
    """Look up (and memoize) a bundled dataset by name."""
    dataset = _CACHE.get(name)
    if dataset is None:
        builder = _BUILDERS.get(name)
        if builder is None:
            raise KeyError(f"unknown dataset {name!r} "
                           f"(bundled: {', '.join(dataset_names())})")
        dataset = _CACHE[name] = builder()
    return dataset


# ----------------------------------------------------------------------
# dataset-backed vector streams
# ----------------------------------------------------------------------
def dataset_stream_spec(name: str, repeat: int = 1,
                        split: str = "all") -> dict:
    """A JSON-shaped stream spec: dataset rows tiled ``repeat`` times.

    The spec is what travels in cache keys and serve requests — the
    vectors are a pure function of it (see
    :func:`repro.testgen.lfsr.stream_minterms`, which dispatches kind
    ``dataset`` to :func:`dataset_stream_minterms`).
    """
    if split not in ("all", "train", "test"):
        raise ValueError(f"bad dataset split {split!r}")
    get_dataset(name)  # fail fast on unknown names
    return {"kind": "dataset", "name": name, "repeat": int(repeat),
            "split": split}


def dataset_stream_minterms(spec: dict) -> List[int]:
    """Materialize a :func:`dataset_stream_spec` as minterm integers."""
    if spec.get("kind") != "dataset":
        raise ValueError(f"not a dataset stream spec: {spec!r}")
    repeat = int(spec.get("repeat", 1))
    if repeat < 1:
        raise ValueError("dataset stream repeat must be >= 1")
    dataset = get_dataset(spec["name"])
    split = spec.get("split", "all")
    rows = {"all": dataset.rows, "train": dataset.train,
            "test": dataset.test}.get(split)
    if rows is None:
        raise ValueError(f"bad dataset split {split!r}")
    minterms = [x for x, _y in rows]
    return minterms * repeat


__all__ = ["Dataset", "dataset_names", "dataset_stream_minterms",
           "dataset_stream_spec", "get_dataset"]
