"""Arithmetic cell generators: adders, comparators, popcount.

Each generator emits a *multi-output* two-level cover for any bit
width, built structurally — never by truth-table enumeration — so a
16-input cell costs milliseconds to generate even though its minterm
space has 65536 points.

The construction tracks every internal signal in **dual-rail SOP**
form: a :class:`Sig` carries both the ON-set and the OFF-set of the
signal as lists of positional-notation input masks (the same two-bits-
per-variable encoding :mod:`repro.logic.cube` uses).  Gate algebra is
then pure cube algebra —

* ``AND``: ON = pairwise intersection of the operand ON-sets,
  OFF = union of the operand OFF-sets;
* ``OR``: the dual;
* ``NOT``: swap the rails;

— with a single-cube-containment sweep after every union to keep the
lists irredundant.  Because both rails are maintained exactly, the
generator knows each output's *structural complement* for free; the
emitted :class:`~repro.logic.function.BooleanFunction` gets it
pre-seeded, so downstream minimization skips the (potentially
expensive) unate-recursive complement of a many-cube ON-set.

Every generator has a matching integer-arithmetic **oracle**
(:func:`adder_oracle`, :func:`comparator_oracle`, :func:`popcount_oracle`)
mapping an input minterm to the expected output bitmask; the
differential tests and ``repro workload eval`` verify the covers
bit-identically against these across widths and kernel backends.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.logic.cover import Cover
from repro.logic.cube import (BIT_DASH, BIT_ONE, BIT_ZERO, Cube,
                              full_input_mask)
from repro.logic.function import BooleanFunction


# ----------------------------------------------------------------------
# dual-rail SOP signals
# ----------------------------------------------------------------------
def _mask_contains(a: int, b: int) -> bool:
    """True when input mask ``a`` covers input mask ``b``."""
    return (a | b) == a


def _sweep(masks: Sequence[int]) -> Tuple[int, ...]:
    """Drop masks covered by another mask of the list (deterministic).

    Sorting by descending dash count first makes the sweep order — and
    therefore the surviving list — a pure function of the set.
    """
    ordered = sorted(set(masks), key=lambda m: (-bin(m).count("1"), m))
    kept: List[int] = []
    for mask in ordered:
        if not any(_mask_contains(other, mask) for other in kept):
            kept.append(mask)
    return tuple(sorted(kept))


def _intersect(a: int, b: int, n: int) -> int:
    """AND of two input masks; 0 when the product is empty."""
    masked = a & b
    probe = masked
    for _ in range(n):
        if probe & 0b11 == 0:
            return 0
        probe >>= 2
    return masked


class Sig:
    """A Boolean signal over ``n`` inputs in dual-rail SOP form.

    ``on`` and ``off`` are tuples of positional-notation input masks
    whose unions are exact complements: every minterm lies in exactly
    one rail.  All gate algebra returns new signals.
    """

    __slots__ = ("n", "on", "off")

    def __init__(self, n: int, on: Sequence[int], off: Sequence[int]):
        self.n = n
        self.on = _sweep(on)
        self.off = _sweep(off)

    # -- constructors --------------------------------------------------
    @classmethod
    def const(cls, n: int, value: bool) -> "Sig":
        full = full_input_mask(n)
        return cls(n, (full,), ()) if value else cls(n, (), (full,))

    @classmethod
    def var(cls, n: int, index: int) -> "Sig":
        full = full_input_mask(n)
        hi = (full & ~(0b11 << (2 * index))) | (BIT_ONE << (2 * index))
        lo = (full & ~(0b11 << (2 * index))) | (BIT_ZERO << (2 * index))
        return cls(n, (hi,), (lo,))

    # -- gate algebra --------------------------------------------------
    def __invert__(self) -> "Sig":
        return Sig(self.n, self.off, self.on)

    def __and__(self, other: "Sig") -> "Sig":
        on = [m for a in self.on for b in other.on
              if (m := _intersect(a, b, self.n))]
        return Sig(self.n, on, self.off + other.off)

    def __or__(self, other: "Sig") -> "Sig":
        off = [m for a in self.off for b in other.off
               if (m := _intersect(a, b, self.n))]
        return Sig(self.n, self.on + other.on, off)

    def __xor__(self, other: "Sig") -> "Sig":
        return (self & ~other) | (~self & other)

    def is_const(self) -> bool:
        return not self.on or not self.off


def majority(a: Sig, b: Sig, c: Sig) -> Sig:
    """Three-input majority (the full-adder carry)."""
    return (a & b) | (a & c) | (b & c)


def xor3(a: Sig, b: Sig, c: Sig) -> Sig:
    """Three-input parity (the full-adder sum)."""
    return (a ^ b) ^ c


def signals_to_function(signals: Sequence[Sig], n_inputs: int,
                        name: str,
                        input_labels: Sequence[str],
                        output_labels: Sequence[str]) -> BooleanFunction:
    """Fold per-output dual-rail signals into one multi-output function.

    Rows asserting several outputs are merged
    (:meth:`~repro.logic.cover.Cover.merge_identical_inputs`), and the
    OFF rails seed the function's structural complement.
    """
    m = len(signals)
    on = Cover(n_inputs, m)
    off = Cover(n_inputs, m)
    for k, sig in enumerate(signals):
        for mask in sig.on:
            on.append(Cube(n_inputs, mask, 1 << k, m))
        for mask in sig.off:
            off.append(Cube(n_inputs, mask, 1 << k, m))
    function = BooleanFunction(on.merge_identical_inputs(), name=name,
                               input_labels=input_labels,
                               output_labels=output_labels)
    # The rails are exact complements by construction, so hand the
    # lazily-computed OFF-set over instead of letting BooleanFunction
    # re-derive it with the unate-recursive complement.
    function._off_set = off.merge_identical_inputs()
    return function


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def adder_function(width: int, carry_in: bool = False) -> BooleanFunction:
    """A ripple/carry ``width``-bit adder as a multi-output cover.

    Inputs: ``a0..a{w-1}`` at indices ``0..w-1``, ``b0..b{w-1}`` at
    ``w..2w-1`` and, with ``carry_in``, ``cin`` at ``2w``.  Outputs:
    ``s0..s{w-1}`` then ``cout``.
    """
    if width < 1:
        raise ValueError("adder width must be >= 1")
    n = 2 * width + (1 if carry_in else 0)
    carry = Sig.var(n, 2 * width) if carry_in else Sig.const(n, False)
    outputs = []
    for i in range(width):
        a = Sig.var(n, i)
        b = Sig.var(n, width + i)
        outputs.append(xor3(a, b, carry))
        carry = majority(a, b, carry)
    outputs.append(carry)
    labels = ([f"a{i}" for i in range(width)]
              + [f"b{i}" for i in range(width)]
              + (["cin"] if carry_in else []))
    out_labels = [f"s{i}" for i in range(width)] + ["cout"]
    name = f"workload:{'addc' if carry_in else 'add'}{width}"
    return signals_to_function(outputs, n, name, labels, out_labels)


def adder_oracle(width: int, minterm: int,
                 carry_in: bool = False) -> int:
    """Expected output bitmask of the adder on an input minterm."""
    a = minterm & ((1 << width) - 1)
    b = (minterm >> width) & ((1 << width) - 1)
    cin = (minterm >> (2 * width)) & 1 if carry_in else 0
    return a + b + cin  # bits 0..w-1 are the sum, bit w the carry


#: Comparator output order: bit 0 = lt, bit 1 = eq, bit 2 = gt.
COMPARATOR_OUTPUTS = ("lt", "eq", "gt")


def comparator_function(width: int,
                        outputs: Sequence[str] = COMPARATOR_OUTPUTS
                        ) -> BooleanFunction:
    """An unsigned magnitude comparator (``a`` vs ``b``).

    ``outputs`` selects any subset of ``lt`` / ``eq`` / ``gt`` (in the
    given order); single-relation cells (``gt8``) stay much smaller
    than the three-output form.  Input layout matches the adder:
    ``a`` at ``0..w-1``, ``b`` at ``w..2w-1``.
    """
    if width < 1:
        raise ValueError("comparator width must be >= 1")
    for label in outputs:
        if label not in COMPARATOR_OUTPUTS:
            raise ValueError(f"unknown comparator output {label!r}")
    if not outputs:
        raise ValueError("need at least one comparator output")
    n = 2 * width
    lt = Sig.const(n, False)
    gt = Sig.const(n, False)
    eq = Sig.const(n, True)
    # walk from the most significant bit down
    for i in reversed(range(width)):
        a = Sig.var(n, i)
        b = Sig.var(n, width + i)
        gt = gt | (eq & a & ~b)
        lt = lt | (eq & ~a & b)
        eq = eq & ~(a ^ b)
    rails = {"lt": lt, "eq": eq, "gt": gt}
    labels = [f"a{i}" for i in range(width)] + \
             [f"b{i}" for i in range(width)]
    tag = "cmp" if tuple(outputs) == COMPARATOR_OUTPUTS else \
        "".join(outputs)
    return signals_to_function([rails[o] for o in outputs], n,
                               f"workload:{tag}{width}", labels,
                               list(outputs))


def comparator_oracle(width: int, minterm: int,
                      outputs: Sequence[str] = COMPARATOR_OUTPUTS) -> int:
    """Expected comparator output bitmask on an input minterm."""
    a = minterm & ((1 << width) - 1)
    b = (minterm >> width) & ((1 << width) - 1)
    flags = {"lt": a < b, "eq": a == b, "gt": a > b}
    mask = 0
    for k, label in enumerate(outputs):
        if flags[label]:
            mask |= 1 << k
    return mask


def popcount_function(width: int) -> BooleanFunction:
    """A ``width``-input population-count cell.

    Outputs the binary count of asserted inputs on
    ``ceil(log2(width + 1))`` outputs, built as a ripple of dual-rail
    half/full adders over the input column.
    """
    if width < 1:
        raise ValueError("popcount width must be >= 1")
    n = width
    # accumulate the count in binary, LSB first
    acc: List[Sig] = []
    for i in range(width):
        carry = Sig.var(n, i)
        for k in range(len(acc)):
            acc[k], carry = acc[k] ^ carry, acc[k] & carry
        if not carry.is_const() or carry.on:
            acc.append(carry)
    # drop constant-0 high bits that never materialized
    while acc and not acc[-1].on:
        acc.pop()
    labels = [f"x{i}" for i in range(width)]
    out_labels = [f"c{k}" for k in range(len(acc))]
    return signals_to_function(acc, n, f"workload:pop{width}", labels,
                               out_labels)


def popcount_oracle(width: int, minterm: int) -> int:
    """Expected popcount output bitmask on an input minterm."""
    return bin(minterm & ((1 << width) - 1)).count("1")


#: Oracle registry used by ``repro workload eval`` and the tests:
#: name -> (n_inputs of ``f(width)``, oracle callable).
ORACLES: Dict[str, Callable[[int, int], int]] = {
    "add": lambda width, m: adder_oracle(width, m),
    "addc": lambda width, m: adder_oracle(width, m, carry_in=True),
    "cmp": lambda width, m: comparator_oracle(width, m),
    "lt": lambda width, m: comparator_oracle(width, m, ("lt",)),
    "eq": lambda width, m: comparator_oracle(width, m, ("eq",)),
    "gt": lambda width, m: comparator_oracle(width, m, ("gt",)),
    "pop": lambda width, m: popcount_oracle(width, m),
}


__all__ = ["COMPARATOR_OUTPUTS", "ORACLES", "Sig", "adder_function",
           "adder_oracle", "comparator_function", "comparator_oracle",
           "majority", "popcount_function", "popcount_oracle",
           "signals_to_function", "xor3"]
