"""Classifier models, deterministic trainers, and cover compilation.

Two model families (after the ambipolar-CNFET ML-classification line
of work) lower onto the GNOR PLA fabric:

* :class:`ThresholdModel` — an integer linear threshold unit
  ``predict(x) = [sum_i w_i x_i >= theta]``; compiled by
  **threshold-to-cover expansion**: a memoized Shannon recursion on
  ``(variable index, residual threshold)`` whose leaves are tautology/
  contradiction suffixes.  The recursion *is* the (quasi-reduced)
  decision diagram of the pseudo-Boolean constraint; enumerating its
  branch paths yields a disjoint SOP for the ON-set and, from the
  complementary leaves, the exact OFF-set — so the compiled
  :class:`~repro.logic.function.BooleanFunction` carries its structural
  complement like the arithmetic cells do.

* :class:`DecisionListModel` — an ordered rule list ``(condition ->
  class)`` with a default; compiled by walking rules first-to-last
  while maintaining the still-unclaimed input space as a cube list
  (sharp against each fired condition), so rule priority is resolved
  at compile time and the emitted cover needs no ordering semantics.

Both trainers are deliberately tiny and fully deterministic — fixed
epochs, fixed row order, integer arithmetic — because trained weights
feed content-addressed store keys: the same bundled dataset must
compile to the same cover on every host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.cover import Cover
from repro.logic.cube import (BIT_DASH, BIT_ONE, BIT_ZERO, Cube,
                              full_input_mask)
from repro.logic.function import BooleanFunction
from repro.workloads.datasets import Dataset


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThresholdModel:
    """An integer linear threshold classifier over binary features."""

    weights: Tuple[int, ...]
    theta: int
    name: str = "threshold"

    @property
    def n_features(self) -> int:
        return len(self.weights)

    def score(self, x: int) -> int:
        return sum(w for i, w in enumerate(self.weights) if (x >> i) & 1)

    def predict(self, x: int) -> int:
        return 1 if self.score(x) >= self.theta else 0

    def to_json(self) -> dict:
        return {"kind": "threshold", "name": self.name,
                "weights": list(self.weights), "theta": self.theta}


@dataclass(frozen=True)
class DecisionListModel:
    """An ordered rule list; each rule is (input mask, class).

    ``rules[r] = (mask, label)`` where ``mask`` is a positional-
    notation condition over the features; the first matching rule
    decides, falling back to ``default``.
    """

    n_features: int
    rules: Tuple[Tuple[int, int], ...]
    default: int
    name: str = "dlist"

    def predict(self, x: int) -> int:
        for mask, label in self.rules:
            if self._matches(mask, x):
                return label
        return self.default

    def _matches(self, mask: int, x: int) -> bool:
        for i in range(self.n_features):
            bit = BIT_ONE if (x >> i) & 1 else BIT_ZERO
            if not (mask >> (2 * i)) & bit:
                return False
        return True

    def to_json(self) -> dict:
        return {"kind": "dlist", "name": self.name,
                "features": self.n_features,
                "rules": [[mask, label] for mask, label in self.rules],
                "default": self.default}


def model_accuracy(model, rows: Sequence[Tuple[int, int]]) -> float:
    """Fraction of ``(x, y)`` rows the model labels correctly."""
    if not rows:
        return 1.0
    return sum(1 for x, y in rows if model.predict(x) == y) / len(rows)


# ----------------------------------------------------------------------
# threshold-to-cover expansion
# ----------------------------------------------------------------------
def threshold_to_cover(model: ThresholdModel
                       ) -> Tuple[List[int], List[int]]:
    """Expand a threshold unit into disjoint (ON, OFF) input-mask lists.

    Shannon recursion on feature index with the residual threshold as
    the co-ordinate, memoized after clamping the residual into the
    still-achievable score interval — the clamp is what collapses the
    exponential branch tree into the decision diagram.
    """
    n = model.n_features
    full = full_input_mask(n)
    # suffix score bounds: lo[i]/hi[i] = min/max achievable from features i..n-1
    lo = [0] * (n + 1)
    hi = [0] * (n + 1)
    for i in reversed(range(n)):
        w = model.weights[i]
        lo[i] = lo[i + 1] + min(w, 0)
        hi[i] = hi[i + 1] + max(w, 0)

    memo: Dict[Tuple[int, int], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def rec(i: int, t: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        # clamp into [lo, hi+1]: anything below always fires, anything
        # above never does — distinct residuals in one bucket behave
        # identically on every suffix assignment
        t = max(lo[i], min(t, hi[i] + 1))
        if t <= lo[i]:
            return (full,), ()
        if t > hi[i]:
            return (), (full,)
        key = (i, t)
        hit = memo.get(key)
        if hit is not None:
            return hit
        w = model.weights[i]
        on_hi, off_hi = rec(i + 1, t - w)   # x_i = 1
        on_lo, off_lo = rec(i + 1, t)       # x_i = 0
        set_hi = ~(BIT_ZERO << (2 * i)) & full
        set_lo = ~(BIT_ONE << (2 * i)) & full
        result = (
            tuple(m & set_hi for m in on_hi)
            + tuple(m & set_lo for m in on_lo),
            tuple(m & set_hi for m in off_hi)
            + tuple(m & set_lo for m in off_lo),
        )
        memo[key] = result
        return result

    on, off = rec(0, model.theta)
    return list(on), list(off)


def _sharp_masks(masks: List[int], condition: int, n: int) -> List[int]:
    """The part of ``masks`` outside ``condition`` (input-part sharp)."""
    remaining: List[int] = []
    helper = Cube(n, condition, 1, 1)
    for mask in masks:
        cube = Cube(n, mask, 1, 1)
        if not cube.intersects(helper):
            remaining.append(mask)
            continue
        for piece in helper.complement_cubes():
            clipped = cube.intersection(piece)
            if clipped is not None:
                remaining.append(clipped.inputs)
    return remaining


def decision_list_to_cover(model: DecisionListModel
                           ) -> Tuple[List[int], List[int]]:
    """Compile a decision list into disjoint (ON, OFF) input masks.

    Walks rules in priority order, intersecting each condition with
    the input space earlier rules left unclaimed, so the union is
    order-free; the default class claims the remainder.
    """
    n = model.n_features
    remaining = [full_input_mask(n)]
    rails: Dict[int, List[int]] = {0: [], 1: []}
    for condition, label in model.rules:
        helper = Cube(n, condition, 1, 1)
        for mask in remaining:
            clipped = Cube(n, mask, 1, 1).intersection(helper)
            if clipped is not None:
                rails[label].append(clipped.inputs)
        remaining = _sharp_masks(remaining, condition, n)
    rails[model.default].extend(remaining)
    return rails[1], rails[0]


def compile_classifier(model, name: Optional[str] = None
                       ) -> BooleanFunction:
    """Lower a trained model to a single-output cover (structural OFF).

    The ON-set asserts class 1; the OFF rail from the expansion seeds
    the function's complement, so minimization never re-derives it.
    """
    if isinstance(model, ThresholdModel):
        on_masks, off_masks = threshold_to_cover(model)
    elif isinstance(model, DecisionListModel):
        on_masks, off_masks = decision_list_to_cover(model)
    else:
        raise TypeError(f"cannot compile {type(model).__name__}")
    n = model.n_features
    on = Cover(n, 1, [Cube(n, m, 1, 1) for m in sorted(set(on_masks))])
    off = Cover(n, 1, [Cube(n, m, 1, 1) for m in sorted(set(off_masks))])
    function = BooleanFunction(
        on, name=name or f"workload:clf-{model.name}",
        input_labels=[f"f{i}" for i in range(n)],
        output_labels=["class1"])
    function._off_set = off
    return function


# ----------------------------------------------------------------------
# deterministic trainers
# ----------------------------------------------------------------------
def train_threshold(dataset: Dataset, epochs: int = 40) -> ThresholdModel:
    """A deterministic integer perceptron.

    Fixed epoch count, fixed row order, ±1 integer updates on
    mistakes: the learned weights are a pure function of the dataset,
    which keeps compiled covers (and their store keys) host-stable.
    """
    n = dataset.n_features
    weights = [0] * n
    bias = 0
    for _ in range(epochs):
        mistakes = 0
        for x, y in dataset.train:
            score = bias + sum(w for i, w in enumerate(weights)
                               if (x >> i) & 1)
            predicted = 1 if score >= 0 else 0
            if predicted != y:
                mistakes += 1
                delta = 1 if y else -1
                bias += delta
                for i in range(n):
                    if (x >> i) & 1:
                        weights[i] += delta
        if not mistakes:
            break
    return ThresholdModel(tuple(weights), -bias,
                          name=f"{dataset.name}-perceptron")


def train_decision_list(dataset: Dataset, max_literals: int = 3,
                        max_rules: int = 8) -> DecisionListModel:
    """A greedy deterministic decision-list learner.

    Each round scores every conjunction of up to ``max_literals``
    literals by (purity, coverage) on the still-uncovered training
    rows — ties broken by the condition mask, so the learned list is
    unique — claims the winner's rows, and stops when rules run out or
    nothing pure remains.  The default class is the majority of the
    uncovered remainder.
    """
    n = dataset.n_features
    full = full_input_mask(n)

    conditions: List[int] = []

    def grow(mask: int, start: int, depth: int) -> None:
        if depth == 0:
            return
        for var in range(start, n):
            for field in (BIT_ONE, BIT_ZERO):
                refined = (mask & ~(BIT_DASH << (2 * var))) \
                    | (field << (2 * var))
                conditions.append(refined)
                grow(refined, var + 1, depth - 1)

    grow(full, 0, max_literals)

    def matches(mask: int, x: int) -> bool:
        for i in range(n):
            bit = BIT_ONE if (x >> i) & 1 else BIT_ZERO
            if not (mask >> (2 * i)) & bit:
                return False
        return True

    remaining = list(dataset.train)
    rules: List[Tuple[int, int]] = []
    while remaining and len(rules) < max_rules:
        best = None
        for mask in conditions:
            hit = [y for x, y in remaining if matches(mask, x)]
            if not hit:
                continue
            for label in (1, 0):
                correct = sum(1 for y in hit if y == label)
                purity = correct / len(hit)
                key = (purity, correct, -mask, -label)
                if best is None or key > best[0]:
                    best = (key, mask, label)
        if best is None or best[0][0] < 1.0:
            break  # nothing pure left; the default absorbs the rest
        _key, mask, label = best
        rules.append((mask, label))
        remaining = [(x, y) for x, y in remaining if not matches(mask, x)]
    if remaining:
        ones = sum(1 for _x, y in remaining if y)
        default = 1 if 2 * ones >= len(remaining) else 0
    else:
        default = 0
    return DecisionListModel(n, tuple(rules), default,
                             name=f"{dataset.name}-dlist")


__all__ = ["DecisionListModel", "ThresholdModel", "compile_classifier",
           "decision_list_to_cover", "model_accuracy",
           "threshold_to_cover", "train_decision_list",
           "train_threshold"]
