"""Deterministic fault injection for the serving stack.

See :mod:`repro.faults.registry` for the failpoint registry and the
``REPRO_FAULTS`` spec grammar, and :mod:`repro.faults.chaos` for the
seeded soak harness behind ``repro chaos`` / ``benchmarks/bench_chaos``.
"""

from repro.faults.registry import (CRASH_EXIT_CODE, DEFAULT_MS, FAULTS_ENV,
                                   FAULTS_SEED_ENV, FaultPlan, FaultRule,
                                   SITES, active, check, configure,
                                   crash_or_hang, current, env_mentions,
                                   install, maybe_fail_worker_task,
                                   parse_spec, raise_io_error)

__all__ = ["CRASH_EXIT_CODE", "DEFAULT_MS", "FAULTS_ENV", "FAULTS_SEED_ENV",
           "FaultPlan", "FaultRule", "SITES", "active", "check", "configure",
           "crash_or_hang", "current", "env_mentions", "install",
           "maybe_fail_worker_task", "parse_spec", "raise_io_error"]
