"""Seeded chaos soak: the serving stack under a deterministic fault diet.

Two segments, one verdict:

* **store segment** — a deterministic ``eval_batch`` workload through a
  fresh :class:`~repro.store.service.SynthesisService` while the store
  disk tier misbehaves (torn writes, fsync errors, corrupt-on-read,
  lock stalls, publication hangs).  Every returned payload must be
  byte-identical to a fault-free oracle service's answer: the store is
  allowed to lose cache entries, never to serve wrong ones.
* **serve segment** — the PR 7 load shape (pipelined concurrent clients
  over loopback TCP, micro-batched evaluates plus minimize traffic)
  replayed twice: once fault-free (the oracle run) and once with worker
  crashes, poisoned results, connection resets mid-reply, delayed
  flushes and forced overload — while the resilient clients retry with
  jittered backoff and the worker bridge's circuit breaker guards the
  pool.  Invariants: **zero hangs** (every request resolves within its
  wall budget), **zero wrong bytes** (every *completed* reply equals
  the oracle run's reply), bounded p99 degradation.

Fault schedules are content-addressed (:meth:`FaultPlan.key`); the
whole soak is reproducible from ``(seed, spec)``.  Entry points:
``repro chaos`` (CLI) and ``benchmarks/bench_chaos.py`` (the
``chaos_soak`` BENCH_perf.json record).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.registry import FaultPlan, install, parse_spec

#: Default store-segment schedule: every disk-tier failpoint armed at a
#: few percent (publication *hang*, not crash — the in-process segment
#: must not exit the harness).
DEFAULT_STORE_FAULTS = ("store.disk_write:torn@0.06;"
                        "store.disk_write:io_error@0.03;"
                        "store.fsync:io_error@0.04;"
                        "store.disk_read:corrupt@0.05;"
                        "store.lock:stall@0.03,ms=5;"
                        "store.publish:hang@0.02,ms=10")

#: Default serve-segment schedule: worker and connection failpoints at
#: a composite rate comfortably past the 2%% acceptance floor.
DEFAULT_SERVE_FAULTS = ("worker.task:crash@0.03;"
                        "worker.result:poison@0.04;"
                        "serve.conn:reset@0.04;"
                        "serve.flush:delay@0.05,ms=2;"
                        "serve.overload:force@0.03")


@dataclass
class ChaosSettings:
    """One soak's knobs (all deterministic given ``seed``)."""

    seed: int = 7
    store_ops: int = 80
    requests: int = 160
    clients: int = 4
    jobs: int = 2
    store_faults: str = DEFAULT_STORE_FAULTS
    serve_faults: str = DEFAULT_SERVE_FAULTS
    #: Per-request wall budget in the faulted serve pass; expiry is a
    #: *hang* (the invariant the soak exists to catch).
    hang_budget_s: float = 60.0
    #: Worker-bridge per-attempt timeout during the soak.
    worker_timeout_s: float = 10.0
    #: ``ok`` bound on faulted-vs-oracle p99 (recycles and retries cost
    #: real time; unbounded degradation would hide livelock).
    max_p99_ratio: float = 100.0


def fault_keys(settings: ChaosSettings) -> Dict[str, str]:
    """Content addresses of the soak's two fault schedules."""
    return {
        "store": FaultPlan(parse_spec(settings.store_faults),
                           settings.seed).key(),
        "serve": FaultPlan(parse_spec(settings.serve_faults),
                           settings.seed).key(),
    }


def _p99_ms(latencies: List[float]) -> float:
    from repro import perf
    if not latencies:
        return 0.0
    return round(perf.quantile(latencies, 0.99) * 1e3, 3)


def _fault_counters() -> Dict[str, int]:
    """The run's fault/retry/breaker counters out of the perf snapshot."""
    from repro import perf
    counters = perf.snapshot()["counters"]
    prefixes = ("faults.", "retries.", "breaker.", "serve.worker.",
                "store.put_errors", "store.corrupt", "store.orphans",
                "store.quarantine")
    return {name: value for name, value in sorted(counters.items())
            if name.startswith(prefixes)}


def _injected_rate(counters: Dict[str, int]) -> Tuple[int, int, float]:
    """(injected, checked, rate) across the parent-process failpoints."""
    injected = counters.get("faults.injected", 0)
    checked = sum(value for name, value in counters.items()
                  if name.startswith("faults.checked."))
    return injected, checked, (injected / checked if checked else 0.0)


# ----------------------------------------------------------------------
# store segment
# ----------------------------------------------------------------------
def _store_workload(seed: int, n_unique: int = 12):
    """Deterministic (covers, minterms) eval-batch requests."""
    from repro.logic.function import BooleanFunction

    covers = [BooleanFunction.random(6, 2, 8, seed=seed + s).on_set
              for s in range(4)]
    workload = []
    for i in range(n_unique):
        group = [covers[i % len(covers)], covers[(i + 1) % len(covers)]]
        minterms = [(i * 17 + j * 13 + 5) % 64 for j in range(6)]
        workload.append((group, minterms))
    return workload


def run_store_chaos(settings: ChaosSettings) -> Dict[str, Any]:
    """The store segment: byte identity while the disk tier misbehaves."""
    from repro import faults, perf
    from repro.serve import protocol
    from repro.store.service import SynthesisService
    from repro.store.store import ArtifactStore

    workload = _store_workload(settings.seed)

    # fault-free oracle answers (one per unique request)
    oracle_dir = tempfile.mkdtemp(prefix="repro-chaos-oracle-")
    oracle = SynthesisService(ArtifactStore(oracle_dir), enabled=True)
    expected = [protocol.dumps(
        {"masks": oracle.evaluate_batch(covers, minterms=minterms)})
        for covers, minterms in workload]

    # the faulted pass: memory tier off so repeats really hit the disk
    # tier (and its corrupt-on-read / quarantine paths)
    chaos_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
    service = SynthesisService(ArtifactStore(chaos_dir, memory_entries=0),
                               enabled=True)
    perf.reset()
    faults.configure(settings.store_faults, settings.seed)
    mismatches = failures = 0
    latencies: List[float] = []
    try:
        for i in range(settings.store_ops):
            covers, minterms = workload[i % len(workload)]
            t0 = time.perf_counter()
            try:
                masks = service.evaluate_batch(covers, minterms=minterms)
            except Exception:  # noqa: BLE001 - the soak counts, not raises
                failures += 1
                continue
            latencies.append(time.perf_counter() - t0)
            if protocol.dumps({"masks": masks}) != expected[i % len(workload)]:
                mismatches += 1
    finally:
        faults.configure(None)
    counters = _fault_counters()
    injected, checked, rate = _injected_rate(counters)
    store_stats = service.store.stats()
    return {
        "ops": settings.store_ops,
        "completed": len(latencies),
        "failures": failures,
        "mismatches": mismatches,
        "p99_ms": _p99_ms(latencies),
        "injected": injected,
        "checked": checked,
        "injected_rate": round(rate, 4),
        "quarantined": store_stats["quarantined"],
        "counters": counters,
    }


# ----------------------------------------------------------------------
# serve segment
# ----------------------------------------------------------------------
def _serve_workload(seed: int, n_requests: int):
    """Evaluate-heavy request mix with minimize traffic every 5th."""
    from repro.logic.function import BooleanFunction
    from repro.store import codecs

    covers = [codecs.encode_cover(
        BooleanFunction.random(6, 2, 8, seed=seed + s).on_set)
        for s in range(4)]
    minimizers = [codecs.encode_cover(
        BooleanFunction.random(6, 2, 10, seed=seed + 50 + s).on_set)
        for s in range(3)]
    requests = []
    for i in range(n_requests):
        if i % 5 == 4:
            requests.append(("minimize",
                             {"cover": minimizers[i % len(minimizers)]}))
        else:
            requests.append(("evaluate",
                             {"cover": covers[i % len(covers)],
                              "minterms": [(i * 13 + 5) % 64]}))
    return requests


async def _soak_pass(settings: ChaosSettings, workload, pool,
                     faulted: bool) -> Dict[str, Any]:
    """One serve pass; returns per-request outcomes and latencies."""
    from repro.serve import (AsyncServeClient, RetryPolicy, ServeConfig,
                             ServeError, SynthesisServer, WorkerBridge)
    from repro.serve.workers import CircuitBreaker
    from repro.serve import protocol

    server = SynthesisServer(
        ServeConfig(max_batch=8, linger_us=500, queue_limit=64),
        executor=WorkerBridge(pool=pool, timeout=settings.worker_timeout_s,
                              retries=3, backoff=0.05,
                              breaker=CircuitBreaker(threshold=5,
                                                     cooldown=0.5)))
    host, port = await server.start_tcp()
    clients = []
    for c in range(settings.clients):
        policy = RetryPolicy(retries=6, base=0.02, cap=0.5,
                             deadline=settings.worker_timeout_s * 2,
                             seed=settings.seed * 1000 + c)
        clients.append(await AsyncServeClient(policy).connect(host, port))

    outcomes: List[Optional[str]] = [None] * len(workload)
    errors: List[Optional[str]] = [None] * len(workload)
    latencies: List[Optional[float]] = [None] * len(workload)
    hangs = 0

    async def one(i: int, op: str, params: dict) -> None:
        nonlocal hangs
        t0 = time.perf_counter()
        try:
            result = await asyncio.wait_for(
                clients[i % len(clients)].request(op, params),
                timeout=settings.hang_budget_s)
        except asyncio.TimeoutError:
            hangs += 1
            errors[i] = "hang"
            return
        except ServeError as exc:
            errors[i] = exc.code
            return
        except Exception as exc:  # noqa: BLE001 - exhausted retries
            errors[i] = type(exc).__name__
            return
        outcomes[i] = protocol.dumps(result)
        latencies[i] = time.perf_counter() - t0

    await asyncio.gather(*[one(i, op, params)
                           for i, (op, params) in enumerate(workload)])
    for client in clients:
        try:
            await client.close()
        except Exception:  # noqa: BLE001 - resets mid-close are fine
            pass
    # drain twice, concurrently: the soak exercises drain idempotency
    # under whatever conn faults are still armed
    await asyncio.gather(server.drain(), server.drain())
    completed = [l for l in latencies if l is not None]
    return {"outcomes": outcomes, "errors": errors, "hangs": hangs,
            "completed": len(completed), "p99_ms": _p99_ms(completed),
            "faulted": faulted}


def run_serve_chaos(settings: ChaosSettings) -> Dict[str, Any]:
    """The serve segment: oracle pass, then the same load under faults."""
    from repro import faults, perf
    from repro.runner import WarmPool

    workload = _serve_workload(settings.seed, settings.requests)

    def one_pass(faulted: bool) -> Dict[str, Any]:
        os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(
            prefix="repro-chaos-serve-")
        from repro.store.service import reset_service
        reset_service()
        if faulted:
            faults.install(settings.serve_faults, settings.seed)
        pool = WarmPool(jobs=settings.jobs)
        try:
            # fork+import the workers up front so neither pass's
            # latency quantiles pay worker spin-up (the faulted pass's
            # recycles still pay theirs — that IS the degradation
            # being measured)
            pool.run(_noop_probe, None, timeout=120.0)
            return asyncio.run(_soak_pass(settings, workload, pool,
                                          faulted))
        finally:
            pool.shutdown()
            if faulted:
                faults.install(None)

    oracle = one_pass(faulted=False)
    if oracle["hangs"] or oracle["completed"] != len(workload):
        raise RuntimeError(
            f"oracle pass incomplete: {oracle['completed']}/"
            f"{len(workload)} completed, {oracle['hangs']} hangs")
    perf.reset()
    chaos = one_pass(faulted=True)

    mismatches = sum(
        1 for served, expect in zip(chaos["outcomes"], oracle["outcomes"])
        if served is not None and served != expect)
    counters = _fault_counters()
    injected, checked, rate = _injected_rate(counters)
    error_codes: Dict[str, int] = {}
    for code in chaos["errors"]:
        if code is not None:
            error_codes[code] = error_codes.get(code, 0) + 1
    return {
        "requests": len(workload),
        "clients": settings.clients,
        "completed": chaos["completed"],
        "failed": len(workload) - chaos["completed"],
        "error_codes": error_codes,
        "hangs": chaos["hangs"],
        "mismatches": mismatches,
        "oracle_p99_ms": oracle["p99_ms"],
        "faulted_p99_ms": chaos["p99_ms"],
        "injected": injected,
        "checked": checked,
        "injected_rate": round(rate, 4),
        "counters": counters,
    }


def _noop_probe(_payload):
    """Picklable worker warm-up task."""
    return None


def quiet_asyncio_log() -> None:
    """Silence asyncio's per-write warnings on aborted transports.

    Injected connection resets make the server write replies into
    aborted sockets by design; asyncio logs ``socket.send() raised
    exception`` for each one, which buries the soak's real output.
    """
    import logging
    logging.getLogger("asyncio").setLevel(logging.ERROR)


# ----------------------------------------------------------------------
# the whole soak
# ----------------------------------------------------------------------
def run_chaos(settings: Optional[ChaosSettings] = None) -> Dict[str, Any]:
    """Run both segments; returns the JSON-ready soak verdict.

    ``ok`` requires zero hangs, zero byte mismatches in either segment,
    and a completed-request majority in the faulted serve pass.
    """
    settings = settings or ChaosSettings()
    t0 = time.perf_counter()
    store = run_store_chaos(settings)
    serve = run_serve_chaos(settings)
    injected = store["injected"] + serve["injected"]
    checked = store["checked"] + serve["checked"]
    identical = store["mismatches"] == 0 and serve["mismatches"] == 0
    hangs = serve["hangs"]
    completed_frac = serve["completed"] / max(1, serve["requests"])
    p99_ratio = (serve["faulted_p99_ms"] / serve["oracle_p99_ms"]
                 if serve["oracle_p99_ms"] else 0.0)
    ok = (identical and hangs == 0 and store["failures"] == 0
          and completed_frac >= 0.5
          and p99_ratio <= settings.max_p99_ratio)
    return {
        "seed": settings.seed,
        "fault_keys": fault_keys(settings),
        "faults": {"store": settings.store_faults,
                   "serve": settings.serve_faults},
        "store": store,
        "serve": serve,
        "injected": injected,
        "checked": checked,
        "injected_rate": round(injected / checked, 4) if checked else 0.0,
        "hangs": hangs,
        "identical": identical,
        "completed_frac": round(completed_frac, 4),
        "p99_ratio": round(p99_ratio, 2),
        "wall_s": round(time.perf_counter() - t0, 3),
        "ok": ok,
    }


__all__ = ["ChaosSettings", "DEFAULT_SERVE_FAULTS", "DEFAULT_STORE_FAULTS",
           "fault_keys", "run_chaos", "run_serve_chaos", "run_store_chaos"]
