"""Deterministic fault-injection failpoints (the chaos substrate).

The paper's premise is computing on an unreliable substrate; the
serving stack built on top of it (store → runner → serve) claims to
survive crashes, torn writes, timeouts and overload.  This module
turns that claim into something a harness can *exercise on demand*:
named failpoints compiled into the hot paths, armed by a compact,
seeded, content-addressable spec — the same discipline the LFSR vector
streams apply to load generation, applied to failure schedules.

Spec grammar (``REPRO_FAULTS``)::

    spec  = rule (";" rule)*
    rule  = site ":" kind "@" arm ("," key "=" number)*
    arm   = probability        e.g.  store.disk_write:io_error@0.05
          | "after=" N         e.g.  worker.task:crash@after=3
          | "every=" N         e.g.  serve.conn:reset@every=40

* a bare probability arms a per-check Bernoulli draw from the site's
  own seeded RNG;
* ``after=N`` fires exactly once, on check ``N+1`` of that site;
* ``every=N`` fires on every Nth check;
* trailing ``key=value`` pairs parameterize the fault (``ms=50`` for
  hang/stall/delay durations).

Determinism: every site draws from its own ``random.Random`` seeded by
``sha256(seed, site)`` and keeps its own check counter, so a given
(spec, seed) produces the same injection sequence per site per process
— worker processes inherit the spec through the environment and replay
their own deterministic sequences.  :meth:`FaultPlan.key` is the
SHA-256 of the canonical spec plus seed, so a chaos run is
content-addressed exactly like an LFSR stream spec.

The registry is *zero-cost when disarmed*: :func:`check` returns
``None`` after one environment lookup when no spec is set, and sites
compile to a single function call.  Counters ride :mod:`repro.perf`:
``faults.checked.<site>`` and ``faults.injected.<site>.<kind>``.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.errors import ReproInputError

#: Environment variable carrying the failpoint spec (empty = disarmed).
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable seeding the per-site RNGs (default 0).
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Exit code of an injected worker/publisher crash (visible in
#: BrokenProcessPool diagnostics; distinct from real segfaults).
CRASH_EXIT_CODE = 23

#: Registered injection sites and the fault kinds each supports.  A
#: spec naming anything else is rejected up front — a typo must not
#: silently disarm a chaos run.
SITES: Dict[str, Tuple[str, ...]] = {
    # content-addressed store, disk tier
    "store.disk_write": ("io_error", "torn"),
    "store.fsync": ("io_error",),
    "store.disk_read": ("corrupt", "io_error"),
    "store.lock": ("stall",),
    "store.publish": ("crash", "hang"),
    # warm worker pool
    "worker.task": ("crash", "hang"),
    "worker.result": ("poison",),
    # serving layer
    "serve.conn": ("reset",),
    "serve.flush": ("delay",),
    "serve.overload": ("force",),
}

#: Default durations (milliseconds) for time-shaped faults, overridable
#: per rule with ``,ms=...``.
DEFAULT_MS = {"hang": 30_000.0, "stall": 50.0, "delay": 2.0}


@dataclass(frozen=True)
class FaultRule:
    """One armed failpoint: where, what, and when it fires."""

    site: str
    kind: str
    prob: Optional[float] = None
    after: Optional[int] = None
    every: Optional[int] = None
    params: Tuple[Tuple[str, float], ...] = ()

    def param(self, name: str, default: float) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def delay_s(self) -> float:
        """The rule's duration in seconds (hang/stall/delay kinds)."""
        return self.param("ms", DEFAULT_MS.get(self.kind, 0.0)) / 1e3

    def render(self) -> str:
        """The rule back in canonical spec form."""
        if self.after is not None:
            arm = f"after={self.after}"
        elif self.every is not None:
            arm = f"every={self.every}"
        else:
            arm = repr(self.prob)
        extras = "".join(f",{k}={v:g}" for k, v in self.params)
        return f"{self.site}:{self.kind}@{arm}{extras}"


def _parse_rule(text: str) -> FaultRule:
    head, sep, arm_text = text.partition("@")
    if not sep:
        raise ReproInputError(f"fault rule {text!r} lacks '@arm'")
    site, sep, kind = head.partition(":")
    site, kind = site.strip(), kind.strip()
    if not sep or not site or not kind:
        raise ReproInputError(f"fault rule {text!r} is not 'site:kind@arm'")
    if site not in SITES:
        known = ", ".join(sorted(SITES))
        raise ReproInputError(f"unknown fault site {site!r} (known: {known})")
    if kind not in SITES[site]:
        raise ReproInputError(
            f"site {site!r} does not support kind {kind!r} "
            f"(supported: {', '.join(SITES[site])})")
    pieces = [p.strip() for p in arm_text.split(",") if p.strip()]
    if not pieces:
        raise ReproInputError(f"fault rule {text!r} has an empty arm")
    arm, extras = pieces[0], pieces[1:]
    prob = after = every = None
    if arm.startswith("after="):
        after = _parse_count(arm[len("after="):], text)
    elif arm.startswith("every="):
        every = _parse_count(arm[len("every="):], text)
        if every < 1:
            raise ReproInputError(f"fault rule {text!r}: every=N needs N >= 1")
    else:
        try:
            prob = float(arm)
        except ValueError:
            raise ReproInputError(f"fault rule {text!r}: arm {arm!r} is not "
                                  f"a probability, after=N or every=N")
        if not 0.0 < prob <= 1.0:
            raise ReproInputError(f"fault rule {text!r}: probability "
                                  f"{prob!r} outside (0, 1]")
    params = []
    for extra in extras:
        key, sep, value = extra.partition("=")
        if not sep:
            raise ReproInputError(f"fault rule {text!r}: parameter "
                                  f"{extra!r} is not key=value")
        try:
            params.append((key.strip(), float(value)))
        except ValueError:
            raise ReproInputError(f"fault rule {text!r}: parameter value "
                                  f"{value!r} is not a number")
    return FaultRule(site=site, kind=kind, prob=prob, after=after,
                     every=every, params=tuple(params))


def _parse_count(raw: str, rule: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ReproInputError(f"fault rule {rule!r}: count {raw!r} is not "
                              f"an integer")
    if value < 0:
        raise ReproInputError(f"fault rule {rule!r}: count must be >= 0")
    return value


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec string into rules (may be empty)."""
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if chunk:
            rules.append(_parse_rule(chunk))
    return rules


class FaultPlan:
    """A compiled, seeded fault schedule with live per-site state.

    Thread-safe: serving checks sites from the event-loop thread and
    from store calls on arbitrary threads.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = int(seed)
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._calls: Dict[str, int] = {}
        self._fired: set = set()
        self._rng: Dict[str, random.Random] = {}
        self._lock = threading.Lock()

    def spec(self) -> str:
        """The canonical spec string (round-trips through the parser)."""
        return ";".join(rule.render() for rule in self.rules)

    def key(self) -> str:
        """Content address of (spec, seed) — names one chaos schedule."""
        material = f"{self.seed}|{self.spec()}".encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def _site_rng(self, site: str) -> random.Random:
        rng = self._rng.get(site)
        if rng is None:
            # worker.* sites run inside worker processes and are salted
            # by PID: a replacement worker must not deterministically
            # replay its predecessor's crash draw, or a probabilistic
            # crash fault that fires on a worker's first check becomes
            # unrecoverable no matter how often the pool recycles.
            # Parent-process sites stay fully (seed, spec)-determined.
            salt = f"|{os.getpid()}" if site.startswith("worker.") else ""
            digest = hashlib.sha256(
                f"{self.seed}|{site}{salt}".encode("utf-8")).digest()
            rng = self._rng[site] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return rng

    def check(self, site: str) -> Optional[FaultRule]:
        """One pass over ``site``'s failpoint; the firing rule or None."""
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            calls = self._calls.get(site, 0) + 1
            self._calls[site] = calls
            perf.count(f"faults.checked.{site}")
            for index, rule in enumerate(rules):
                if rule.after is not None:
                    token = (site, index)
                    if calls == rule.after + 1 and token not in self._fired:
                        self._fired.add(token)
                        return self._hit(rule)
                elif rule.every is not None:
                    if calls % rule.every == 0:
                        return self._hit(rule)
                elif self._site_rng(site).random() < rule.prob:
                    return self._hit(rule)
        return None

    def _hit(self, rule: FaultRule) -> FaultRule:
        perf.count(f"faults.injected.{rule.site}.{rule.kind}")
        perf.count("faults.injected")
        return rule


# ----------------------------------------------------------------------
# process-global plan (explicit configure() wins over the environment)
# ----------------------------------------------------------------------
_configured: Optional[FaultPlan] = None
_env_cache: Tuple[str, str, Optional[FaultPlan]] = ("", "", None)
_state_lock = threading.Lock()


def configure(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """Arm (or, with ``spec=None``/empty, disarm) faults in-process.

    Overrides the environment until cleared.  Worker *processes* do not
    see this — export :data:`FAULTS_ENV` (see :func:`install`) so
    forked workers inherit the schedule.
    """
    global _configured
    with _state_lock:
        _configured = FaultPlan(parse_spec(spec), seed) if spec else None
        return _configured


def install(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """:func:`configure` plus environment export for worker processes."""
    if spec:
        os.environ[FAULTS_ENV] = spec
        os.environ[FAULTS_SEED_ENV] = str(int(seed))
    else:
        os.environ.pop(FAULTS_ENV, None)
        os.environ.pop(FAULTS_SEED_ENV, None)
    return configure(spec, seed)


def current() -> Optional[FaultPlan]:
    """The active plan: explicit :func:`configure` or the environment.

    Environment parsing is cached on the (spec, seed) strings, so the
    fast path of a disarmed process is a single dict lookup and plans
    keep their live counters across calls.
    """
    global _env_cache
    if _configured is not None:
        return _configured
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    seed = os.environ.get(FAULTS_SEED_ENV, "0").strip() or "0"
    cached_spec, cached_seed, plan = _env_cache
    if spec == cached_spec and seed == cached_seed:
        return plan
    with _state_lock:
        try:
            plan = FaultPlan(parse_spec(spec), int(seed))
        except ValueError:
            raise ReproInputError(f"{FAULTS_SEED_ENV}={seed!r} is not an "
                                  f"integer")
        _env_cache = (spec, seed, plan)
    return plan


def active() -> bool:
    """True when any failpoint is armed in this process."""
    return current() is not None


def check(site: str) -> Optional[FaultRule]:
    """The firing rule for one pass over ``site``, or None (fast path)."""
    plan = current()
    if plan is None:
        return None
    return plan.check(site)


def env_mentions(prefix: str) -> bool:
    """Cheap parent-side hint: does the env spec arm ``prefix`` sites?

    Used to decide whether worker submissions need the fault shim
    without parsing anything on the hot path.
    """
    if _configured is not None:
        return any(rule.site.startswith(prefix)
                   for rule in _configured.rules)
    return prefix in os.environ.get(FAULTS_ENV, "")


# ----------------------------------------------------------------------
# site helpers (keep the wired-in failpoints to one line each)
# ----------------------------------------------------------------------
def raise_io_error(site: str, rule: FaultRule) -> None:
    """Raise the injected OSError for an ``io_error`` fault."""
    import errno
    raise OSError(errno.EIO, f"injected fault {rule.kind!r} at {site}")


def crash_or_hang(rule: FaultRule) -> None:
    """Apply a ``crash`` (hard exit, SIGKILL-equivalent timing) or
    ``hang`` (sleep past any sane deadline) fault in-process."""
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        time.sleep(rule.delay_s)


def maybe_fail_worker_task() -> None:
    """The ``worker.task`` failpoint (runs inside worker processes)."""
    rule = check("worker.task")
    if rule is not None:
        crash_or_hang(rule)


__all__ = ["CRASH_EXIT_CODE", "DEFAULT_MS", "FAULTS_ENV", "FAULTS_SEED_ENV",
           "FaultPlan", "FaultRule", "SITES", "active", "check", "configure",
           "crash_or_hang", "current", "env_mentions", "install",
           "maybe_fail_worker_task", "parse_spec", "raise_io_error"]
