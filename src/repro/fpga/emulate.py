"""The Table 2 experiment: standard FPGA vs ambipolar-CNFET FPGA.

Protocol (Section 5 of the paper):

1. build a workload and split it into CLB-sized blocks "the same way
   standard FPGAs split large functions into different CLBs";
2. implement it on a **standard** fabric sized so the device is
   essentially full (the paper reports 99 % occupancy), routing *both*
   polarities of every consumed signal;
3. emulate the **ambipolar CNFET** FPGA as "a classical one with half
   of the area for every CLB" on the *same die*: the grid gains sites
   (occupancy halves), wires shrink with the tile pitch, and only one
   polarity per signal is routed;
4. measure occupancy and maximum frequency of both through the same
   place-and-route-and-timing code path.

The flow runs on the backend ``REPRO_KERNEL`` selects: the array-backed
grid engine (:mod:`repro.fpga.grid`) or the scalar oracle loops.  Both
produce bit-identical placements, routes and Table 2 numbers for the
same seeds; the ``fpga.place`` / ``fpga.route`` / ``fpga.timing`` perf
timers and counters record where the flow's time went either way.

The two expensive phases are served through the synthesis service
(:mod:`repro.store.service`): the partitioned workload and each
fabric's place-and-route result are content-addressed artifacts, so a
repeated emulation (same seed/geometry/backend) reconstructs the same
report from the cache instead of re-annealing.  ``REPRO_CACHE=off``
restores the always-recompute behaviour; results are bit-identical
either way because the artifacts are complete encodings of the phase
outputs (timing is cheap and always recomputed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fpga.clb import CLBSpec, ambipolar_pla_clb, standard_pla_clb
from repro.fpga.fabric import FPGAFabric
from repro.fpga.netlist import Netlist, build_netlist
from repro.fpga.placement import Placement, place
from repro.fpga.routing import RoutingResult, route
from repro.fpga.timing import (DEFAULT_WIRE_DELAY, TimingReport,
                               WireDelayParameters, analyze_timing)
from repro.logic.function import BooleanFunction
from repro.mapping.partition import PartitionResult, Partitioner


@dataclass
class FabricRun:
    """One fabric's implementation results.

    Attributes
    ----------
    fabric:
        The fabric used.
    netlist:
        The (possibly polarity-expanded) netlist.
    occupancy_percent:
        Occupied area as the paper reports it.
    frequency_mhz:
        Maximum frequency from static timing.
    total_wirelength:
        Routed segments summed over all nets.
    overflow_segments:
        Channel segments left over capacity after negotiation.
    """

    fabric: FPGAFabric
    netlist: Netlist
    placement: Placement
    routing: RoutingResult
    timing: TimingReport
    occupancy_percent: float
    frequency_mhz: float
    total_wirelength: int
    overflow_segments: int


@dataclass
class EmulationReport:
    """The Table 2 comparison.

    ``standard`` and ``cnfet`` hold the two runs; convenience
    properties expose the paper's two table rows.
    """

    standard: FabricRun
    cnfet: FabricRun

    @property
    def frequency_gain(self) -> float:
        """CNFET frequency over standard frequency (paper: ~2.27x)."""
        return self.cnfet.frequency_mhz / self.standard.frequency_mhz

    @property
    def area_ratio(self) -> float:
        """CNFET occupancy over standard occupancy (paper: ~0.45)."""
        return (self.cnfet.occupancy_percent
                / self.standard.occupancy_percent)

    def table_rows(self) -> List[Tuple[str, str, str]]:
        """The two rows of Table 2, formatted."""
        return [
            ("Occupied area",
             f"{self.standard.occupancy_percent:.1f}%",
             f"{self.cnfet.occupancy_percent:.1f}%"),
            ("Frequency",
             f"{self.standard.frequency_mhz:.0f} MHz",
             f"{self.cnfet.frequency_mhz:.0f} MHz"),
        ]


def generate_workload(seed: int, n_blocks_target: int,
                      partitioner: Partitioner) -> List[PartitionResult]:
    """Random multi-function workload totalling ~``n_blocks_target`` blocks.

    Functions are drawn with supports larger than one CLB so the
    partitioner produces multi-block, multi-level structures (realistic
    inter-CLB nets rather than isolated blocks).
    """
    rng = random.Random(seed)
    partitions: List[PartitionResult] = []
    total_blocks = 0
    index = 0
    while total_blocks < n_blocks_target:
        n_inputs = rng.randint(partitioner.max_inputs + 1,
                               partitioner.max_inputs + 4)
        n_outputs = rng.randint(2, max(2, partitioner.max_outputs))
        n_cubes = rng.randint(8, 16)
        function = BooleanFunction.random(
            n_inputs, n_outputs, n_cubes,
            seed=seed * 7919 + index, name=f"f{index}",
            dash_probability=0.55)
        partition = partitioner.partition(function)
        if total_blocks + len(partition.blocks) > n_blocks_target:
            break
        partitions.append(partition)
        total_blocks += len(partition.blocks)
        index += 1
    # Top up with small single-block functions to hit the occupancy target
    # (the paper's standard fabric is reported full at 99 %).
    while total_blocks < n_blocks_target:
        n_inputs = rng.randint(3, partitioner.max_inputs)
        function = BooleanFunction.random(
            n_inputs, 1, rng.randint(2, max(2, partitioner.max_products // 3)),
            seed=seed * 7919 + index, name=f"f{index}",
            dash_probability=0.5)
        partition = partitioner.partition(function)
        if total_blocks + len(partition.blocks) > n_blocks_target:
            index += 1
            continue
        partitions.append(partition)
        total_blocks += len(partition.blocks)
        index += 1
    return partitions


def implement(partitions: Sequence[PartitionResult], fabric: FPGAFabric,
              seed: int,
              wire_params: WireDelayParameters = DEFAULT_WIRE_DELAY
              ) -> FabricRun:
    """Place, route and time one fabric implementation.

    Each phase accumulates its ``fpga.*`` perf timer/counters, so the
    benchmark drivers can embed a where-did-the-time-go snapshot.
    """
    from repro.store.service import get_service
    netlist = build_netlist(partitions,
                            dual_polarity=fabric.clb.dual_polarity_inputs)
    placement, routing = get_service().place_route(netlist, fabric, seed)
    timing = analyze_timing(netlist, routing, fabric, wire_params)
    return FabricRun(
        fabric=fabric,
        netlist=netlist,
        placement=placement,
        routing=routing,
        timing=timing,
        occupancy_percent=100.0 * fabric.occupancy(netlist.n_blocks()),
        frequency_mhz=timing.max_frequency_mhz(),
        total_wirelength=routing.total_wirelength,
        overflow_segments=len(routing.overflow),
    )


def run_emulation(seed: int = 2, grid_side: int = 10,
                  target_occupancy: float = 0.99,
                  clb_inputs: int = 9, clb_outputs: int = 4,
                  clb_products: int = 20,
                  channel_capacity: int = 28,
                  clb_area_factor: float = 0.5,
                  wire_params: WireDelayParameters = DEFAULT_WIRE_DELAY,
                  jobs: int = 1) -> EmulationReport:
    """Run the full Table 2 protocol.

    Parameters
    ----------
    seed:
        Workload / placement seed (the experiment is deterministic).
    grid_side:
        Standard-fabric grid side; the workload is generated to fill it
        to ``target_occupancy``.
    clb_*:
        CLB capacity shared by both variants.
    channel_capacity:
        Routing tracks per channel segment.
    clb_area_factor:
        The paper's emulation ratio (0.5 = "half of the area for every
        CLB").
    jobs:
        With ``jobs > 1`` the two fabric implementations (standard and
        CNFET) run in separate worker processes.  They are independent
        place-and-route problems over the same workload, so the report
        is identical for any job count.
    """
    std_clb = standard_pla_clb(clb_inputs, clb_outputs, clb_products)
    amb_clb = ambipolar_pla_clb(clb_inputs, clb_outputs, clb_products,
                                area_factor=clb_area_factor)
    partitioner = Partitioner(clb_inputs, clb_outputs, clb_products)

    from repro.store import codecs
    from repro.store.service import get_service
    service = get_service()

    n_blocks_target = int(round(grid_side * grid_side * target_occupancy))
    partitions = service.get_or_compute(
        "table2_workload",
        {"seed": seed, "n_blocks": n_blocks_target,
         "partitioner": {"max_inputs": partitioner.max_inputs,
                         "max_outputs": partitioner.max_outputs,
                         "max_products": partitioner.max_products}},
        lambda: generate_workload(seed, n_blocks_target, partitioner),
        encode=codecs.encode_partitions, decode=codecs.decode_partitions)

    std_fabric = FPGAFabric(grid_side, grid_side, std_clb, channel_capacity)
    amb_fabric = FPGAFabric.same_die(std_fabric, amb_clb, channel_capacity)

    if jobs > 1:
        # resilient fan-out: the two independent place-and-route runs
        # are crash-isolated and retried (see repro.runner)
        from repro.runner import run_tasks
        tasks = [("standard", (partitions, std_fabric, seed, wire_params)),
                 ("cnfet", (partitions, amb_fabric, seed, wire_params))]
        standard, cnfet = run_tasks(_implement_task, tasks, jobs=2).values()
    else:
        standard = implement(partitions, std_fabric, seed, wire_params)
        cnfet = implement(partitions, amb_fabric, seed, wire_params)
    return EmulationReport(standard=standard, cnfet=cnfet)


def _implement_task(payload):
    """Top-level (picklable) wrapper for the resilient runner."""
    partitions, fabric, seed, wire_params = payload
    return implement(partitions, fabric, seed, wire_params)
