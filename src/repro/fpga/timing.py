"""FPGA timing analysis: wire + logic delays, critical path, frequency.

Net delay follows a buffered-segment model: every channel segment
crossed contributes one segment delay proportional to the **tile
pitch** (shrinking the CLB shrinks the wires — the paper's mechanism),
inflated by a congestion penalty on over-utilized segments.  Block
delay comes from the CLB's internal PLA timing model.  The critical
path is found by longest-path propagation over the block DAG, and the
maximum frequency is its reciprocal.

Constants are calibrated once so the *standard* Table 2 fabric lands
near the paper's 154 MHz; the ambipolar fabric is then measured through
the identical code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import kernels, perf
from repro.fpga.fabric import Edge, FPGAFabric
from repro.fpga.netlist import Net, Netlist
from repro.fpga.routing import RoutingResult
from repro.tech import TechDescriptor, get_tech

#: Descriptor supplying the calibrated wire-model defaults.
_DEFAULT_TECH = get_tech("cnfet")


@dataclass(frozen=True)
class WireDelayParameters:
    """Constants of the buffered-wire delay model.

    Defaults come from the ``cnfet`` technology descriptor
    (:mod:`repro.tech`); :meth:`from_tech` builds the set for any
    other descriptor.

    Attributes
    ----------
    segment_delay_per_l:
        Delay of one routed channel segment, per unit of tile pitch
        [s / L].  Calibrated against the Table 2 standard fabric.
    congestion_beta:
        Quadratic congestion penalty coefficient: a segment at
        utilization ``u`` is slowed by ``1 + beta * max(0, u - 0.5)**2``.
    connection_delay:
        Fixed delay of entering/leaving the routing fabric per net [s]
        (connection-block switches).
    """

    segment_delay_per_l: float = _DEFAULT_TECH.wire_segment_delay_per_l
    congestion_beta: float = _DEFAULT_TECH.wire_congestion_beta
    connection_delay: float = _DEFAULT_TECH.wire_connection_delay

    @classmethod
    def from_tech(cls, descriptor: TechDescriptor) -> "WireDelayParameters":
        """The wire-delay view of a technology descriptor."""
        return cls(
            segment_delay_per_l=descriptor.wire_segment_delay_per_l,
            congestion_beta=descriptor.wire_congestion_beta,
            connection_delay=descriptor.wire_connection_delay)


#: Calibrated defaults shared by the benches.
DEFAULT_WIRE_DELAY = WireDelayParameters()


@dataclass
class TimingReport:
    """Static timing analysis outcome.

    Attributes
    ----------
    critical_path_delay:
        Longest register-to-register (pad-to-pad) delay [s].
    max_frequency_hz:
        ``1 / critical_path_delay``.
    critical_path:
        Block names along the critical path, in order.
    net_delays:
        net name -> wire delay [s].
    block_delays:
        block name -> logic delay [s].
    """

    critical_path_delay: float
    max_frequency_hz: float
    critical_path: List[str]
    net_delays: Dict[str, float]
    block_delays: Dict[str, float]

    def max_frequency_mhz(self) -> float:
        """Frequency in MHz (the Table 2 unit)."""
        return self.max_frequency_hz / 1e6


def _congestion_penalties(usage: Dict[Edge, int], capacity: int,
                          beta: float) -> Dict[Edge, float]:
    """Per-segment congestion slowdown factors.

    A segment at utilization ``u`` is slowed by
    ``1 + beta * max(0, u - 0.5)**2``.  On the array backend the whole
    table is one vectorized pass over the usage values; the scalar
    fallback loops.  Both square via a plain multiply, so every factor
    is bit-identical across backends.
    """
    if kernels.enabled() and usage:
        import numpy as np
        used = np.fromiter(usage.values(), dtype=np.float64,
                           count=len(usage))
        slack = np.maximum(used / capacity - 0.5, 0.0)
        factors = 1.0 + beta * (slack * slack)
        return dict(zip(usage.keys(), factors.tolist()))
    penalties = {}
    for edge, used in usage.items():
        slack = max(0.0, used / capacity - 0.5)
        penalties[edge] = 1.0 + beta * (slack * slack)
    return penalties


def analyze_timing(netlist: Netlist, routing: RoutingResult,
                   fabric: FPGAFabric,
                   params: WireDelayParameters = DEFAULT_WIRE_DELAY
                   ) -> TimingReport:
    """Longest-path timing over the placed-and-routed design.

    ``params`` may also be a :class:`~repro.tech.TechDescriptor`.
    """
    if isinstance(params, TechDescriptor):
        params = WireDelayParameters.from_tech(params)
    with perf.timer("fpga.timing"):
        return _analyze_timing(netlist, routing, fabric, params)


def _analyze_timing(netlist: Netlist, routing: RoutingResult,
                    fabric: FPGAFabric,
                    params: WireDelayParameters) -> TimingReport:
    pitch = fabric.tile_pitch_l()
    capacity = fabric.channel_capacity
    penalties = _congestion_penalties(routing.usage, capacity,
                                      params.congestion_beta)

    net_delays: Dict[str, float] = {}
    for name, routed in routing.routed.items():
        delay = params.connection_delay
        for edge in routed.edges:
            delay += params.segment_delay_per_l * pitch \
                * penalties.get(edge, 1.0)
        net_delays[name] = delay

    logic_delay = fabric.clb.logic_delay()
    block_delays = {name: logic_delay for name in netlist.blocks}

    # Longest-path propagation in dependency order (blocks are already
    # topologically sorted by the netlist builder).
    arrival: Dict[str, Tuple[float, List[str]]] = {}

    def signal_arrival(net: Net) -> Tuple[float, List[str]]:
        wire = net_delays.get(net.name, params.connection_delay)
        if net.source is None:
            return (wire, [])
        source_arrival, path = arrival.get(net.source, (0.0, [net.source]))
        return (source_arrival + wire, path)

    nets_by_sink: Dict[str, List[Net]] = {}
    for net in netlist.nets:
        for sink in net.sinks:
            nets_by_sink.setdefault(sink, []).append(net)

    for name in netlist.block_order():
        best_arrival = 0.0
        best_path: List[str] = []
        for net in nets_by_sink.get(name, []):
            t, path = signal_arrival(net)
            if t > best_arrival:
                best_arrival = t
                best_path = path
        arrival[name] = (best_arrival + block_delays[name], best_path + [name])

    # Close the path through primary-output nets.
    critical_delay = 0.0
    critical_path: List[str] = []
    for net in netlist.nets:
        t, path = signal_arrival(net)
        if not net.sinks:  # primary-output net: t already includes the wire
            if t > critical_delay:
                critical_delay = t
                critical_path = path
    for name, (t, path) in arrival.items():
        if t > critical_delay:
            critical_delay = t
            critical_path = path

    if critical_delay <= 0.0:
        critical_delay = logic_delay or 1e-12
    return TimingReport(
        critical_path_delay=critical_delay,
        max_frequency_hz=1.0 / critical_delay,
        critical_path=critical_path,
        net_delays=net_delays,
        block_delays=block_delays,
    )
