"""Block/net netlists for the FPGA flow.

A :class:`Netlist` is the placement/routing currency: named blocks
(CLB-sized logic from :class:`repro.mapping.partition.Partitioner`)
connected by named nets.  ``build_netlist`` performs the one expansion
Table 2 hinges on: on a *standard* fabric every signal consumed by a
PLA CLB must arrive in **both polarities**, so each logical signal
becomes two routed nets; the ambipolar fabric routes one net per signal
because the GNOR planes invert internally ("the inverted signals are
not routed but generated internally").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.mapping.partition import Block, PartitionResult


@dataclass
class Net:
    """One routed signal.

    Attributes
    ----------
    name:
        Unique net name (complement nets get a ``#inv`` suffix).
    source:
        Driving block name, or ``None`` for a primary input.
    sinks:
        Consuming block names (primary outputs have no sink block).
    is_complement:
        True for the extra inverted-polarity copy routed on standard
        fabrics.
    """

    name: str
    source: Optional[str]
    sinks: List[str] = field(default_factory=list)
    is_complement: bool = False

    def n_terminals(self) -> int:
        """Pin count of the net (source + sinks)."""
        return (1 if self.source is not None else 0) + len(self.sinks)


@dataclass
class Netlist:
    """Blocks plus the nets connecting them.

    Attributes
    ----------
    blocks:
        name -> :class:`Block`, in dependency order.
    nets:
        All routed nets.
    primary_inputs, primary_outputs:
        Global I/O signal names.
    """

    blocks: Dict[str, Block]
    nets: List[Net]
    primary_inputs: List[str]
    primary_outputs: List[str]

    def n_blocks(self) -> int:
        """Number of CLBs required."""
        return len(self.blocks)

    def n_nets(self) -> int:
        """Number of routed signals (Table 2's signal-count factor)."""
        return len(self.nets)

    def block_order(self) -> List[str]:
        """Block names in insertion (dependency) order."""
        return list(self.blocks)

    def nets_of_block(self, name: str) -> List[Net]:
        """Nets touching a block (as source or sink)."""
        return [net for net in self.nets
                if net.source == name or name in net.sinks]

    def fanin_nets(self, name: str) -> List[Net]:
        """Nets feeding a block."""
        return [net for net in self.nets if name in net.sinks]

    def driver_of(self, signal_prefix: str) -> Optional[str]:
        """The block driving nets named ``signal_prefix`` (or None)."""
        for net in self.nets:
            if net.name == signal_prefix:
                return net.source
        return None


def build_netlist(partitions: Sequence[PartitionResult],
                  dual_polarity: bool) -> Netlist:
    """Assemble one netlist from partitioned functions.

    Parameters
    ----------
    partitions:
        One :class:`PartitionResult` per workload function; block and
        signal names are already globally unique (function-name
        prefixed).
    dual_polarity:
        True for the standard fabric: every signal with at least one
        block sink is doubled into a complement net (the standard PLA
        CLB consumes both polarities).
    """
    blocks: Dict[str, Block] = {}
    primary_inputs: List[str] = []
    primary_outputs: List[str] = []
    driver: Dict[str, Optional[str]] = {}
    sinks: Dict[str, List[str]] = {}

    for partition in partitions:
        primary_inputs.extend(partition.primary_inputs)
        primary_outputs.extend(partition.primary_outputs)
        for signal in partition.primary_inputs:
            driver.setdefault(signal, None)
        for block in partition.blocks:
            if block.name in blocks:
                raise ValueError(f"duplicate block name {block.name}")
            blocks[block.name] = block
            for signal in block.output_signals:
                driver[signal] = block.name
            for signal in block.input_signals:
                sinks.setdefault(signal, []).append(block.name)

    nets: List[Net] = []
    for signal, source in driver.items():
        signal_sinks = sinks.get(signal, [])
        is_primary_output = signal in primary_outputs
        if not signal_sinks and not is_primary_output:
            continue  # dangling signal (e.g. unused primary input)
        nets.append(Net(signal, source, list(signal_sinks)))
        if dual_polarity and signal_sinks:
            # The complemented copy is consumed by the same sinks; it is
            # generated at the source (or an input pad inverter) and
            # routed in parallel — the wiring the GNOR fabric avoids.
            nets.append(Net(f"{signal}#inv", source, list(signal_sinks),
                            is_complement=True))

    return Netlist(blocks, nets, primary_inputs, primary_outputs)
