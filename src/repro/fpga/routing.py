"""A PathFinder-style congestion-negotiating router.

Each net is routed as a tree over the tile grid: the first sink is
connected to the source by Dijkstra over the channel graph, and every
further sink connects to the cheapest node of the partially-built tree
(a standard Steiner approximation).  Over-subscribed channel segments
are resolved by negotiation: present-congestion and history costs grow
each iteration until demand fits capacity (or the iteration bound is
hit, in which case the residual overflow is reported — overflow also
feeds the timing model as a congestion penalty).

The negotiation loop is shared; the wavefront engine behind it is
selected per ``REPRO_KERNEL`` backend.  The scalar oracle (kept here
for differential testing) expands frontiers through site-tuple dicts;
the array backend (:class:`repro.fpga.grid.PackedRouteEngine`) runs
the same Dijkstra over flat node-indexed arrays with bulk congestion
updates.  Both key the wavefront heap by node index, so pop order —
and therefore every routed tree — is bit-identical across backends.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import kernels, perf
from repro.fpga.fabric import Edge, FPGAFabric, Site
from repro.fpga.netlist import Net, Netlist
from repro.fpga.placement import Placement


@dataclass
class RoutedNet:
    """One net's routing tree.

    Attributes
    ----------
    net:
        The routed net.
    edges:
        Channel segments used by the tree.
    wirelength:
        Tree size in segments.
    """

    net: Net
    edges: List[Edge]

    @property
    def wirelength(self) -> int:
        return len(self.edges)


@dataclass
class RoutingResult:
    """Outcome of routing a whole netlist.

    Attributes
    ----------
    routed:
        net name -> :class:`RoutedNet`.
    usage:
        Channel segment -> nets using it.
    overflow:
        Segments whose usage exceeds capacity, with the excess.
    iterations:
        Negotiation rounds performed (also accumulated into the
        ``fpga.route.iterations`` perf counter).
    total_wirelength:
        Sum of all tree sizes.
    """

    routed: Dict[str, RoutedNet]
    usage: Dict[Edge, int]
    overflow: Dict[Edge, int]
    iterations: int
    total_wirelength: int

    def max_channel_usage(self) -> int:
        """Peak segment demand."""
        return max(self.usage.values(), default=0)

    def congestion_of(self, edge: Edge, capacity: int) -> float:
        """Utilization of one segment (may exceed 1 on overflow)."""
        return self.usage.get(edge, 0) / capacity


class _ScalarRouteEngine:
    """The original dict-over-site-tuples wavefront (the scalar oracle)."""

    def __init__(self, fabric: FPGAFabric):
        self.fabric = fabric
        self.capacity = fabric.channel_capacity
        self.history: Dict[Edge, float] = {}
        self.usage: Dict[Edge, int] = {}
        self._present_factor = 0.0

    def begin_iteration(self, present_factor: float) -> None:
        self.usage = {}
        self._present_factor = present_factor

    def route_tree(self, terminals: Sequence[Site]) -> List[Edge]:
        """Steiner-approximate tree: connect each terminal to the grown
        tree; commits the tree's demand to the usage map."""
        fabric = self.fabric
        tree_nodes: Set[Site] = {terminals[0]}
        tree_edges: List[Edge] = []
        for target in terminals[1:]:
            if target in tree_nodes:
                continue
            path = self._dijkstra(tree_nodes, target, self._present_factor)
            for a, b in zip(path, path[1:]):
                edge = fabric.edge(a, b)
                if edge not in tree_edges:
                    tree_edges.append(edge)
                tree_nodes.add(a)
                tree_nodes.add(b)
        for edge in tree_edges:
            self.usage[edge] = self.usage.get(edge, 0) + 1
        return tree_edges

    def _dijkstra(self, sources: Set[Site], target: Site,
                  present_factor: float) -> List[Site]:
        """Cheapest path from any source node to ``target``.

        Heap entries are keyed ``(cost, node_index, site)`` — the same
        total order the packed engine uses, so equal-cost frontiers pop
        identically on both backends.
        """
        fabric = self.fabric
        width = fabric.width
        capacity = self.capacity
        usage, history = self.usage, self.history
        heap: List[Tuple[float, int, Site]] = []
        best: Dict[Site, float] = {}
        previous: Dict[Site, Optional[Site]] = {}
        for source in sources:
            heapq.heappush(heap, (0.0, source[1] * width + source[0], source))
            best[source] = 0.0
            previous[source] = None

        while heap:
            cost, _key, node = heapq.heappop(heap)
            if node == target:
                break
            if cost > best.get(node, float("inf")):
                continue
            for neighbor in fabric.neighbors(node):
                edge = fabric.edge(node, neighbor)
                used = usage.get(edge, 0)
                present = present_factor * max(0, used + 1 - capacity)
                edge_cost = 1.0 + present + history.get(edge, 0.0)
                new_cost = cost + edge_cost
                if new_cost < best.get(neighbor, float("inf")):
                    best[neighbor] = new_cost
                    previous[neighbor] = node
                    heapq.heappush(
                        heap,
                        (new_cost, neighbor[1] * width + neighbor[0],
                         neighbor))

        if target not in previous and target not in best:
            raise RuntimeError(
                "router failed to reach a target (disconnected grid?)")
        path = [target]
        node = target
        while previous.get(node) is not None:
            node = previous[node]
            path.append(node)
        path.reverse()
        return path

    def overflow_dict(self) -> Dict[Edge, int]:
        return {edge: used - self.capacity
                for edge, used in self.usage.items()
                if used > self.capacity}

    def apply_history(self, history_increment: float) -> None:
        for edge, excess in self.overflow_dict().items():
            self.history[edge] = self.history.get(edge, 0.0) \
                + history_increment * excess

    def usage_dict(self) -> Dict[Edge, int]:
        return dict(self.usage)


def _make_route_engine(fabric: FPGAFabric):
    """The backend-selected wavefront engine (packed or scalar oracle)."""
    if kernels.enabled():
        from repro.fpga.grid import PackedRouteEngine
        return PackedRouteEngine(fabric)
    return _ScalarRouteEngine(fabric)


def route(netlist: Netlist, placement: Placement, fabric: FPGAFabric,
          max_iterations: int = 8, history_increment: float = 0.4,
          present_factor: float = 0.6) -> RoutingResult:
    """Route every net of ``netlist`` over ``fabric``.

    Multi-terminal nets become Steiner-approximate trees; the
    negotiation loop reroutes all nets with updated congestion costs
    until no segment is over capacity or ``max_iterations`` is reached.
    """
    with perf.timer("fpga.route"):
        result = _route(netlist, placement, fabric, max_iterations,
                        history_increment, present_factor)
    perf.count("fpga.route.iterations", result.iterations)
    perf.count("fpga.route.overflow_segments", len(result.overflow))
    perf.count("fpga.route.wirelength", result.total_wirelength)
    return result


def _route(netlist: Netlist, placement: Placement, fabric: FPGAFabric,
           max_iterations: int, history_increment: float,
           present_factor: float) -> RoutingResult:
    nets = [net for net in netlist.nets if net.n_terminals() >= 1]
    terminals: Dict[str, List[Site]] = {}
    for net in nets:
        terms = _net_terminals(net, placement)
        if len(terms) >= 2:
            terminals[net.name] = terms

    engine = _make_route_engine(fabric)
    routed: Dict[str, RoutedNet] = {}
    iterations = 0

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        engine.begin_iteration(present_factor)
        routed = {}
        for net in nets:
            terms = terminals.get(net.name)
            if not terms:
                routed[net.name] = RoutedNet(net, [])
                continue
            edges = engine.route_tree(terms)
            routed[net.name] = RoutedNet(net, edges)
        overflow = engine.overflow_dict()
        if not overflow:
            break
        engine.apply_history(history_increment)

    overflow = engine.overflow_dict()
    total = sum(r.wirelength for r in routed.values())
    return RoutingResult(routed=routed, usage=engine.usage_dict(),
                         overflow=overflow, iterations=iterations,
                         total_wirelength=total)


def _net_terminals(net: Net, placement: Placement) -> List[Site]:
    """Tile coordinates of a net's source and sinks (pads included)."""
    terms: List[Site] = []
    if net.source is not None:
        terms.append(placement.sites[net.source])
    else:
        base = net.name.split("#", 1)[0]
        if base in placement.pads:
            terms.append(placement.pads[base])
    for sink in net.sinks:
        terms.append(placement.sites[sink])
    base = net.name.split("#", 1)[0]
    if net.source is not None and base in placement.pads:
        terms.append(placement.pads[base])  # primary-output pad
    # dedupe, preserving order
    seen: Set[Site] = set()
    unique = []
    for site in terms:
        if site not in seen:
            seen.add(site)
            unique.append(site)
    return unique
