"""Array-backed grid engine for the FPGA flow.

The scalar placement/routing code addresses the fabric through tuples
and dicts: every HPWL re-score walks terminal dicts, every wavefront
step builds ``(x, y)`` tuples and hashes edge pairs.  This module gives
the whole FPGA layer one packed representation built once per flow:

* :class:`GridIndex` — fabric sites and channel segments as contiguous
  index arrays.  Nodes are numbered row-major (``node = y*width + x``),
  segments get dense edge ids, and the 4-neighbourhood is a flat CSR
  adjacency (``adj_ptr`` / ``adj_node`` / ``adj_edge``, ``int32``).
* :class:`IncrementalHPWL` — the annealer's cost model with per-net
  cached bounding boxes and O(1) delta updates on swap/move (per-net
  point-slot lists; one C-speed axis re-scan only when a boundary
  point departs), plus :meth:`evaluate_moves_batch`, a
  vectorized evaluator that scores whole arrays of move proposals
  against second-extreme statistics without touching engine state.
* :class:`PackedRouteEngine` — PathFinder wavefronts over flat
  visited/cost/parent arrays keyed by node index (generation stamps
  instead of per-net reallocation), with present/history congestion
  stored as dense per-edge arrays and the history bump applied in bulk
  between negotiation iterations.

Both engines are exact mirrors of the scalar oracles in
:mod:`repro.fpga.placement` and :mod:`repro.fpga.routing`: same move
deltas (integer HPWL arithmetic), same wavefront pop order (heap keyed
by node index), same congestion arithmetic — so the two
``REPRO_KERNEL`` backends produce bit-identical placements, routes and
Table 2 numbers for the same seeds.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.fabric import Edge, FPGAFabric, Site

#: Instance attribute used to memoize one :class:`GridIndex` per fabric.
_GRID_CACHE_ATTR = "_grid_index_cache"


def grid_index(fabric: FPGAFabric) -> "GridIndex":
    """The (cached) :class:`GridIndex` of a fabric.

    Placement, routing and timing all run over the same arrays; the
    index is built once per fabric object and memoized on it.
    """
    cached = getattr(fabric, _GRID_CACHE_ATTR, None)
    if cached is None or cached.width != fabric.width \
            or cached.height != fabric.height:
        cached = GridIndex(fabric)
        setattr(fabric, _GRID_CACHE_ATTR, cached)
    return cached


class GridIndex:
    """Packed fabric geometry: node numbering, edge ids, CSR adjacency.

    Attributes
    ----------
    width, height, n_nodes, n_edges:
        Grid dimensions and element counts.
    edges:
        edge id -> canonical :data:`Edge` tuple (the reverse of
        ``edge_id``), in :meth:`FPGAFabric.edges` enumeration order.
    adj_ptr, adj_node, adj_edge:
        CSR adjacency over nodes (``int32``): the neighbours of node
        ``n`` are ``adj_node[adj_ptr[n]:adj_ptr[n+1]]`` and the
        segments to them ``adj_edge[...]``, in the same candidate
        order as :meth:`FPGAFabric.neighbors` (+x, -x, +y, -y).
    """

    def __init__(self, fabric: FPGAFabric):
        w, h = fabric.width, fabric.height
        self.width = w
        self.height = h
        self.n_nodes = w * h

        edge_id: Dict[Edge, int] = {}
        edges: List[Edge] = []
        for edge in fabric.edges():
            edge_id[edge] = len(edges)
            edges.append(edge)
        self.edges = edges
        self.edge_id = edge_id
        self.n_edges = len(edges)

        ptr: List[int] = [0]
        nodes: List[int] = []
        segs: List[int] = []
        for y in range(h):
            for x in range(w):
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if 0 <= nx < w and 0 <= ny < h:
                        nodes.append(ny * w + nx)
                        a, b = (x, y), (nx, ny)
                        segs.append(edge_id[(a, b) if a <= b else (b, a)])
                ptr.append(len(nodes))
        self.adj_ptr = np.asarray(ptr, dtype=np.int32)
        self.adj_node = np.asarray(nodes, dtype=np.int32)
        self.adj_edge = np.asarray(segs, dtype=np.int32)
        # unboxed copies for the wavefront inner loop (scalar indexing of
        # a list is cheaper than boxing numpy int32 scalars), plus the
        # per-node (neighbor, edge) pairs pre-merged for tight iteration
        self._adj_ptr = ptr
        self._adj_node = nodes
        self._adj_edge = segs
        self._adj = [tuple(zip(nodes[ptr[n]:ptr[n + 1]],
                               segs[ptr[n]:ptr[n + 1]]))
                     for n in range(self.n_nodes)]
        # step tables for O(path) cost walks: edge id from node to its
        # +x / +y neighbour (-1 on the far border)
        self._edge_right = [-1] * self.n_nodes
        self._edge_up = [-1] * self.n_nodes
        for y in range(h):
            for x in range(w):
                node = y * w + x
                if x + 1 < w:
                    self._edge_right[node] = edge_id[((x, y), (x + 1, y))]
                if y + 1 < h:
                    self._edge_up[node] = edge_id[((x, y), (x, y + 1))]

    def node_of(self, site: Site) -> int:
        """Row-major node index of a tile coordinate."""
        return site[1] * self.width + site[0]

    def site_of(self, node: int) -> Site:
        """Tile coordinate of a node index."""
        return (node % self.width, node // self.width)


# ----------------------------------------------------------------------
# placement: incremental HPWL
# ----------------------------------------------------------------------
class IncrementalHPWL:
    """Per-net cached bounding boxes with O(1) move deltas.

    The engine owns its own terminal coordinates: every net keeps flat
    per-point coordinate lists (one slot per terminal occurrence, pads
    included as fixed trailing slots) and a cached bounding box with
    its cost.  Moving a terminal is O(1) — a couple of comparisons per
    axis — unless the departing point sat on a bounding-box edge, in
    which case that one axis is re-scanned with a C-speed ``min``/
    ``max`` over the net's slot list; boxes that end up unchanged stage
    no undo entry at all.  All arithmetic is integer tile coordinates,
    so deltas equal the scalar oracle's re-score exactly.

    The protocol mirrors the annealer: :meth:`move_delta` stages a
    1-block move or 2-block swap and returns the exact HPWL delta;
    :meth:`commit` keeps it, :meth:`rollback` restores the previous
    state from the staged undo log.
    """

    def __init__(self, nets: Sequence, sites: Dict[str, Site],
                 pads: Dict[str, Site]):
        self.block_id = {name: i for i, name in enumerate(sites)}
        self.pos_x = [site[0] for site in sites.values()]
        self.pos_y = [site[1] for site in sites.values()]

        # Nets with the same terminal multiset and pad point have the
        # same bounding box under every placement — dual-polarity
        # fabrics duplicate almost every signal this way — so identical
        # nets collapse onto one weighted representative.
        # Per representative: one coordinate slot per terminal
        # occurrence (a block sourcing and sinking the same net holds
        # two slots, exactly as the scalar oracle's terminal list
        # counts it), pad slot last.
        self.pts_x: List[List[int]] = []
        self.pts_y: List[List[int]] = []
        self.weight: List[int] = []
        # per block: (representative index, slot) for every occurrence
        self.slots_of_block: List[List[Tuple[int, int]]] = [
            [] for _ in self.block_id]
        rep_of_key: Dict[Tuple, int] = {}
        for net in nets:
            terminals = ([net.source] if net.source else []) + net.sinks
            ids = [b for b in (self.block_id.get(t) for t in terminals)
                   if b is not None]
            base_signal = net.name.split("#", 1)[0]
            pad = pads.get(base_signal)
            key = (tuple(sorted(ids)), pad)
            rep = rep_of_key.get(key)
            if rep is not None:
                self.weight[rep] += 1
                continue
            rep_of_key[key] = len(self.pts_x)
            xs: List[int] = []
            ys: List[int] = []
            for block in ids:
                self.slots_of_block[block].append((len(self.pts_x),
                                                   len(xs)))
                xs.append(self.pos_x[block])
                ys.append(self.pos_y[block])
            if pad is not None:
                xs.append(pad[0])
                ys.append(pad[1])
            self.pts_x.append(xs)
            self.pts_y.append(ys)
            self.weight.append(1)
        # degenerate nets (fewer than two placed points) always cost 0,
        # exactly as the oracle scores them — drop their slots so moves
        # never touch their stats
        degenerate = {i for i, xs in enumerate(self.pts_x) if len(xs) < 2}
        if degenerate:
            self.slots_of_block = [
                [(n, s) for (n, s) in slots if n not in degenerate]
                for slots in self.slots_of_block]

        # cached per-net stats: (xmin, xmax, ymin, ymax, cost)
        self._stats: List[Tuple[int, ...]] = [
            self._full_stats(i) for i in range(len(self.pts_x))]
        self._undo_stats: List[Tuple[int, Tuple[int, ...]]] = []
        self._undo_blocks: List[Tuple[int, int, int]] = []
        self._batch_cache = None

    # -- construction / recompute --------------------------------------
    def _full_stats(self, index: int) -> Tuple[int, ...]:
        xs, ys = self.pts_x[index], self.pts_y[index]
        if len(xs) < 2:
            return (0, 0, 0, 0, 0)
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        return (xmin, xmax, ymin, ymax, (xmax - xmin) + (ymax - ymin))

    # -- cost queries ---------------------------------------------------
    def total(self) -> float:
        """Current total HPWL (exact, from the caches)."""
        return float(sum(stats[4] * w
                         for stats, w in zip(self._stats, self.weight)))

    def final_total(self) -> float:
        """Total HPWL re-derived from scratch (paranoia cross-check)."""
        return float(sum(self._full_stats(i)[4] * self.weight[i]
                         for i in range(len(self.pts_x))))

    def net_cost(self, index: int) -> int:
        """Cached HPWL of one representative net (unweighted)."""
        return self._stats[index][4]

    # -- the annealer protocol ------------------------------------------
    def move_delta(self, mover: str, new_site: Site,
                   swap_with: Optional[str], old_site: Site) -> int:
        """Stage a move (or swap) and return the exact total-HPWL delta.

        ``mover`` goes to ``new_site``; with ``swap_with`` set, that
        block takes ``old_site`` (the mover's previous site).
        """
        block = self.block_id[mover]
        delta = self._shift_block(block, new_site[0], new_site[1])
        if swap_with is not None:
            partner = self.block_id[swap_with]
            delta += self._shift_block(partner, old_site[0], old_site[1])
        self._batch_cache = None
        return delta

    def _shift_block(self, block: int, new_x: int, new_y: int) -> int:
        """Move one block's slots; returns the HPWL delta contribution."""
        pos_x, pos_y = self.pos_x, self.pos_y
        pts_x, pts_y = self.pts_x, self.pts_y
        stats = self._stats
        undo_stats = self._undo_stats
        weight = self.weight
        old_x, old_y = pos_x[block], pos_y[block]
        self._undo_blocks.append((block, old_x, old_y))
        pos_x[block] = new_x
        pos_y[block] = new_y
        delta = 0
        for index, slot in self.slots_of_block[block]:
            xs = pts_x[index]
            ys = pts_y[index]
            # a swap partner may already have shifted this net's slots,
            # so the slot (not the block's old position) is the truth
            px, py = xs[slot], ys[slot]
            xs[slot] = new_x
            ys[slot] = new_y
            st = stats[index]
            oxmin, oxmax, oymin, oymax, cost = st
            # x axis: a departing boundary point forces one C-speed
            # re-scan of the slot list; anything else is O(1)
            if new_x < oxmin:
                xmin = new_x
                xmax = max(xs) if px == oxmax else oxmax
            elif new_x > oxmax:
                xmax = new_x
                xmin = min(xs) if px == oxmin else oxmin
            else:
                xmin = min(xs) if px == oxmin else oxmin
                xmax = max(xs) if px == oxmax else oxmax
            # y axis
            if new_y < oymin:
                ymin = new_y
                ymax = max(ys) if py == oymax else oymax
            elif new_y > oymax:
                ymax = new_y
                ymin = min(ys) if py == oymin else oymin
            else:
                ymin = min(ys) if py == oymin else oymin
                ymax = max(ys) if py == oymax else oymax
            if xmin != oxmin or xmax != oxmax \
                    or ymin != oymin or ymax != oymax:
                undo_stats.append((index, st))
                new_cost = (xmax - xmin) + (ymax - ymin)
                stats[index] = (xmin, xmax, ymin, ymax, new_cost)
                delta += (new_cost - cost) * weight[index]
        return delta

    def commit(self) -> None:
        """Keep the staged move."""
        self._undo_blocks.clear()
        self._undo_stats.clear()

    def rollback(self) -> None:
        """Restore coordinates and caches from the staged undo log."""
        pts_x, pts_y = self.pts_x, self.pts_y
        for block, x, y in self._undo_blocks:
            self.pos_x[block] = x
            self.pos_y[block] = y
            for index, slot in self.slots_of_block[block]:
                pts_x[index][slot] = x
                pts_y[index][slot] = y
        # reverse order: a swap may stage the same net twice
        for index, stats in reversed(self._undo_stats):
            self._stats[index] = stats
        self._undo_blocks.clear()
        self._undo_stats.clear()

    # -- vectorized batch evaluation ------------------------------------
    def _prepare_batch(self):
        """Second-extreme statistics for vectorized move scoring.

        For every net the two smallest / two largest x and y over all
        terminal points (pads included): removing one occurrence of a
        boundary value exposes the second extreme, which is all a
        single-terminal move can need.  Cached until the next staged
        move mutates the engine.
        """
        if self._batch_cache is not None:
            return self._batch_cache
        n_nets = len(self.pts_x)
        ext = np.zeros((n_nets, 8), dtype=np.int64)  # s0x s1x g0x g1x (y...)
        cost = np.zeros(n_nets, dtype=np.int64)
        weight = np.asarray(self.weight, dtype=np.int64)
        scorable = np.zeros(n_nets, dtype=bool)
        for index in range(n_nets):
            xs, ys = self.pts_x[index], self.pts_y[index]
            if len(xs) < 2:
                continue
            sx = sorted(xs)
            sy = sorted(ys)
            ext[index] = (sx[0], sx[1], sx[-1], sx[-2],
                          sy[0], sy[1], sy[-1], sy[-2])
            cost[index] = self._stats[index][4]
            scorable[index] = True
        # CSR over (block -> touched nets), one row per unique net
        ptr = [0]
        net_ids: List[int] = []
        occs: List[int] = []
        for block in range(len(self.block_id)):
            counts: Dict[int, int] = {}
            for index, _slot in self.slots_of_block[block]:
                counts[index] = counts.get(index, 0) + 1
            for index in sorted(counts):
                net_ids.append(index)
                occs.append(counts[index])
            ptr.append(len(net_ids))
        self._batch_cache = (ext, cost, weight, scorable,
                             np.asarray(ptr, dtype=np.int64),
                             np.asarray(net_ids, dtype=np.int64),
                             np.asarray(occs, dtype=np.int64))
        return self._batch_cache

    def evaluate_moves_batch(self, blocks: Sequence[str],
                             sites: Sequence[Site]) -> np.ndarray:
        """HPWL deltas for a whole array of single-block move proposals.

        Scores every ``(blocks[i] -> sites[i])`` move against the
        current state without mutating it; equals running
        :meth:`move_delta` + :meth:`rollback` per proposal.  Rare nets
        where the moved block holds several terminals fall back to the
        exact incremental path.
        """
        ext, cost, weight, scorable, ptr, net_ids, occs = \
            self._prepare_batch()
        block_idx = np.asarray([self.block_id[name] for name in blocks],
                               dtype=np.int64)
        new_x = np.asarray([site[0] for site in sites], dtype=np.int64)
        new_y = np.asarray([site[1] for site in sites], dtype=np.int64)
        old_x = np.asarray(self.pos_x, dtype=np.int64)[block_idx]
        old_y = np.asarray(self.pos_y, dtype=np.int64)[block_idx]

        counts = ptr[block_idx + 1] - ptr[block_idx]
        pair_move = np.repeat(np.arange(len(block_idx)), counts)
        # gather each proposal's touched-net rows from the CSR arrays
        offsets = (np.arange(len(pair_move))
                   - np.repeat(np.cumsum(counts) - counts, counts))
        pair_rows = ptr[block_idx][pair_move] + offsets
        pair_net = net_ids[pair_rows]
        pair_occ = occs[pair_rows]

        e = ext[pair_net]
        px0, py0 = old_x[pair_move], old_y[pair_move]
        px1, py1 = new_x[pair_move], new_y[pair_move]
        # bounding box with one occurrence of the old point removed...
        min_wo_x = np.where(px0 == e[:, 0], e[:, 1], e[:, 0])
        max_wo_x = np.where(px0 == e[:, 2], e[:, 3], e[:, 2])
        min_wo_y = np.where(py0 == e[:, 4], e[:, 5], e[:, 4])
        max_wo_y = np.where(py0 == e[:, 6], e[:, 7], e[:, 6])
        # ...then the new point folded back in
        new_cost = ((np.maximum(max_wo_x, px1) - np.minimum(min_wo_x, px1))
                    + (np.maximum(max_wo_y, py1) - np.minimum(min_wo_y, py1)))
        pair_delta = np.where(scorable[pair_net],
                              (new_cost - cost[pair_net])
                              * weight[pair_net], 0)

        # multi-occurrence pairs: the second-extreme trick only removes
        # one point, so score those few exactly against the slot lists
        multi = np.nonzero(pair_occ > 1)[0]
        for row in multi:
            move = int(pair_move[row])
            index = int(pair_net[row])
            block = int(block_idx[move])
            xs = list(self.pts_x[index])
            ys = list(self.pts_y[index])
            for net_index, slot in self.slots_of_block[block]:
                if net_index == index:
                    xs[slot] = int(new_x[move])
                    ys[slot] = int(new_y[move])
            if len(xs) < 2:
                pair_delta[row] = 0
            else:
                moved = (max(xs) - min(xs)) + (max(ys) - min(ys))
                pair_delta[row] = (moved - int(cost[index])) \
                    * self.weight[index]

        deltas = np.zeros(len(block_idx), dtype=np.int64)
        np.add.at(deltas, pair_move, pair_delta)
        return deltas


# ----------------------------------------------------------------------
# routing: packed PathFinder wavefronts
# ----------------------------------------------------------------------
class PackedRouteEngine:
    """PathFinder over flat node/edge arrays.

    One instance lives for a whole :func:`repro.fpga.routing.route`
    call.  Wavefront state (``best`` cost, ``parent`` node, parent
    edge) is allocated once over the grid and invalidated per Dijkstra
    with generation stamps; the heap holds ``(cost, node_index)``
    pairs, so pop order ties break on the node index — the same total
    order the scalar oracle uses.  The combined per-edge relaxation
    cost (wire + present congestion + history) is one dense table,
    rebuilt vectorized at each negotiation iteration and patched
    incrementally as trees commit demand; history costs live in a
    dense ``float64`` array bumped in one vectorized update between
    iterations.  Each probe is additionally bounded by a
    Manhattan-distance cutoff that provably never changes the result
    (see :meth:`_dijkstra`).
    """

    def __init__(self, fabric: FPGAFabric):
        self.grid = grid_index(fabric)
        self.capacity = fabric.channel_capacity
        n = self.grid.n_nodes
        self.history = np.zeros(self.grid.n_edges, dtype=np.float64)
        self._usage = [0] * self.grid.n_edges
        self._base = [1.0] * self.grid.n_edges
        self._history_list = [0.0] * self.grid.n_edges
        self._present_factor = 0.0
        self._best = [0.0] * n
        self._parent = [-1] * n
        self._parent_edge = [-1] * n
        self._stamp = [0] * n
        self._generation = 0
        # node coordinates, for the per-probe distance-to-target table
        nodes = np.arange(n, dtype=np.int64)
        self._node_x = nodes % self.grid.width
        self._node_y = nodes // self.grid.width

    # -- negotiation-loop hooks -----------------------------------------
    def begin_iteration(self, present_factor: float) -> None:
        """Reset per-iteration demand and the combined edge-cost table.

        ``_base[e]`` always equals the scalar oracle's per-relaxation
        cost ``1.0 + present + history[e]`` at the edge's *current*
        usage, evaluated in the same operation order; it is refreshed
        incrementally as trees commit demand.
        """
        self._usage = [0] * self.grid.n_edges
        self._present_factor = present_factor
        self._history_list = self.history.tolist()
        present0 = present_factor * max(0, 1 - self.capacity)
        self._base = ((1.0 + present0) + self.history).tolist()

    def usage_array(self) -> np.ndarray:
        """Current per-edge demand as a dense array."""
        return np.asarray(self._usage, dtype=np.int32)

    def overflow_ids(self) -> np.ndarray:
        """Edge ids over capacity (vectorized scan)."""
        usage = self.usage_array()
        return np.nonzero(usage > self.capacity)[0]

    def apply_history(self, history_increment: float) -> None:
        """Bulk history bump for every over-capacity segment."""
        usage = self.usage_array()
        excess = usage.astype(np.int64) - self.capacity
        over = excess > 0
        if over.any():
            self.history[over] += history_increment * excess[over]

    def usage_dict(self) -> Dict[Edge, int]:
        """Demand as the ``{edge: count}`` mapping the result exposes."""
        edges = self.grid.edges
        return {edges[e]: used for e, used in enumerate(self._usage) if used}

    def overflow_dict(self) -> Dict[Edge, int]:
        """Over-capacity segments with their excess."""
        edges = self.grid.edges
        capacity = self.capacity
        return {edges[int(e)]: self._usage[int(e)] - capacity
                for e in self.overflow_ids()}

    # -- per-net routing -------------------------------------------------
    def route_tree(self, terminals: Sequence[Site]) -> List[Edge]:
        """Steiner-approximate tree over packed arrays; commits usage."""
        grid = self.grid
        node_of = grid.node_of
        tree_nodes = [node_of(terminals[0])]
        in_tree = set(tree_nodes)
        edge_ids: List[int] = []
        edge_seen = set()
        for target_site in terminals[1:]:
            target = node_of(target_site)
            if target in in_tree:
                continue
            path_nodes, path_edges = self._dijkstra(tree_nodes, target)
            for edge in path_edges:
                if edge not in edge_seen:
                    edge_seen.add(edge)
                    edge_ids.append(edge)
            for node in path_nodes:
                if node not in in_tree:
                    in_tree.add(node)
                    tree_nodes.append(node)
        usage = self._usage
        base = self._base
        history = self._history_list
        capacity = self.capacity
        present_factor = self._present_factor
        for edge in edge_ids:
            usage[edge] += 1
            over = usage[edge] + 1 - capacity
            present = present_factor * over if over > 0 else 0.0
            base[edge] = 1.0 + present + history[edge]
        edges = grid.edges
        return [edges[e] for e in edge_ids]

    def _dijkstra(self, sources: List[int],
                  target: int) -> Tuple[List[int], List[int]]:
        """Cheapest path from the grown tree to ``target``.

        Flat-array wavefront: ``best``/``parent``/``parent_edge`` are
        node-indexed and validated by a generation stamp, so nothing is
        reallocated or cleared between nets.

        The search is bounded: once the target has been relaxed at cost
        ``bt``, any candidate with ``cost + manhattan(node, target)``
        strictly above ``bt`` is skipped.  Every segment costs at least
        1.0, so the Manhattan distance is a lower bound on the
        remaining path cost, and parent hand-offs need a *strictly*
        better cost — the skipped relaxations can neither improve the
        target nor flip an equal-cost parent (the verdict depends only
        on ``(cost, node)``, so equal candidates are kept or skipped
        together).  The surviving pop order, and therefore the routed
        tree, is bit-identical to the scalar oracle's unbounded
        Dijkstra.
        """
        self._generation += 1
        generation = self._generation
        best, stamp = self._best, self._stamp
        parent, parent_edge = self._parent, self._parent_edge
        adj = self.grid._adj
        base = self._base
        width = self.grid.width
        dist = (abs(self._node_x - target % width)
                + abs(self._node_y - target // width)).tolist()
        push, pop = heapq.heappush, heapq.heappop

        heap: List[Tuple[float, int]] = []
        near = sources[0]
        near_dist = dist[near]
        for node in sources:
            stamp[node] = generation
            best[node] = 0.0
            parent[node] = -1
            heap.append((0.0, node))
            if dist[node] < near_dist:
                near_dist = dist[node]
                near = node
        heapq.heapify(heap)

        # Seed the cutoff with an achievable cost: the summed edge cost
        # of one L-shaped walk from the nearest source.  Any achievable
        # cost upper-bounds the optimum, so pruning against it keeps
        # every optimal-path relaxation (see above) while the initial
        # flood collapses to the near-corridor nodes.
        bt = 0.0
        edge_right, edge_up = self.grid._edge_right, self.grid._edge_up
        tx, ty = target % width, target // width
        x, y = near % width, near // width
        node = near
        while x < tx:
            bt += base[edge_right[node]]
            node += 1
            x += 1
        while x > tx:
            node -= 1
            x -= 1
            bt += base[edge_right[node]]
        while y < ty:
            bt += base[edge_up[node]]
            node += width
            y += 1
        while y > ty:
            node -= width
            y -= 1
            bt += base[edge_up[node]]
        reached = False
        while heap:
            cost, node = pop(heap)
            if node == target:
                reached = True
                break
            if cost > best[node] or cost + dist[node] > bt:
                continue  # stale entry / cannot improve the target
            for neighbor, edge in adj[node]:
                new_cost = cost + base[edge]
                if new_cost + dist[neighbor] > bt:
                    continue
                if stamp[neighbor] != generation:
                    stamp[neighbor] = generation
                elif new_cost >= best[neighbor]:
                    continue
                best[neighbor] = new_cost
                parent[neighbor] = node
                parent_edge[neighbor] = edge
                if neighbor == target:
                    bt = new_cost
                push(heap, (new_cost, neighbor))

        if not reached and (stamp[target] != generation):
            raise RuntimeError(
                "router failed to reach a target (disconnected grid?)")
        path_nodes = [target]
        path_edges: List[int] = []
        node = target
        while parent[node] != -1:
            path_edges.append(parent_edge[node])
            node = parent[node]
            path_nodes.append(node)
        path_nodes.reverse()
        path_edges.reverse()
        return path_nodes, path_edges


__all__ = ["GridIndex", "IncrementalHPWL", "PackedRouteEngine",
           "grid_index"]
