"""ASCII visualization of placed-and-routed fabrics.

Terminal-friendly renderings used by the FPGA example and handy when
debugging placement or congestion: an occupancy map of the CLB grid and
a channel-utilization heat map of the routed design.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fpga.fabric import FPGAFabric
from repro.fpga.placement import Placement
from repro.fpga.routing import RoutingResult

#: Utilization glyphs, from idle to overflowing.
_HEAT = " .:-=+*#%@"


def occupancy_map(placement: Placement, fabric: FPGAFabric) -> str:
    """The CLB grid: ``#`` occupied site, ``.`` free site."""
    occupied = set(placement.sites.values())
    lines = []
    for y in range(fabric.height):
        row = "".join("#" if (x, y) in occupied else "."
                      for x in range(fabric.width))
        lines.append(row)
    used = len(occupied)
    lines.append(f"{used}/{fabric.n_sites()} sites occupied "
                 f"({100 * used / fabric.n_sites():.1f}%)")
    return "\n".join(lines)


def congestion_map(routing: RoutingResult, fabric: FPGAFabric) -> str:
    """Per-tile heat map of adjacent channel utilization.

    Each tile shows the *maximum* utilization of its four incident
    channel segments, on a 10-glyph scale; ``@`` marks >= 100 %
    (overflow).
    """
    tile_heat: Dict[tuple, float] = {}
    for edge, used in routing.usage.items():
        utilization = used / fabric.channel_capacity
        for site in edge:
            tile_heat[site] = max(tile_heat.get(site, 0.0), utilization)

    lines = []
    for y in range(fabric.height):
        row = []
        for x in range(fabric.width):
            heat = tile_heat.get((x, y), 0.0)
            index = min(int(heat * (len(_HEAT) - 1)), len(_HEAT) - 1)
            row.append(_HEAT[index])
        lines.append("".join(row))
    peak = max(tile_heat.values(), default=0.0)
    lines.append(f"peak channel utilization: {100 * peak:.0f}% "
                 f"({len(routing.overflow)} segments over capacity)")
    return "\n".join(lines)


def wirelength_histogram(routing: RoutingResult, bins: int = 8) -> str:
    """Distribution of routed net lengths (in channel segments)."""
    lengths = [r.wirelength for r in routing.routed.values()]
    if not lengths:
        return "(no routed nets)"
    top = max(lengths)
    width = max(1, (top + bins) // bins)
    counts: List[int] = [0] * bins
    for length in lengths:
        counts[min(length // width, bins - 1)] += 1
    scale = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * (0 if scale == 0 else round(24 * count / scale))
        lines.append(f"{i * width:4d}-{(i + 1) * width - 1:<4d} "
                     f"{bar} {count}")
    return "\n".join(lines)
