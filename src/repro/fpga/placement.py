"""Simulated-annealing placement.

Blocks are assigned to fabric sites minimizing total half-perimeter
wirelength (HPWL) over all nets.  The annealer uses swap/move
perturbations with a geometric cooling schedule; everything is seeded,
so placements (and therefore Table 2) are reproducible.
Primary I/O is modelled as perimeter pads spread around the die.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fpga.fabric import FPGAFabric, Site
from repro.fpga.netlist import Net, Netlist


@dataclass
class Placement:
    """A complete block-to-site assignment.

    Attributes
    ----------
    sites:
        block name -> tile coordinate.
    pads:
        primary I/O signal -> perimeter coordinate (may lie on the grid
        border tiles).
    wirelength:
        Final HPWL in tile units.
    moves_evaluated:
        Annealer statistics (for ablation benches).
    """

    sites: Dict[str, Site]
    pads: Dict[str, Site]
    wirelength: float
    moves_evaluated: int = 0

    def site_of(self, terminal: str) -> Site:
        """Tile of a block or pad terminal."""
        if terminal in self.sites:
            return self.sites[terminal]
        return self.pads[terminal]


def place(netlist: Netlist, fabric: FPGAFabric, seed: int = 0,
          moves_per_block: int = 200,
          initial_temperature: float = 2.0,
          cooling: float = 0.93) -> Placement:
    """Anneal a placement of ``netlist`` onto ``fabric``.

    Raises ``ValueError`` when the netlist needs more sites than the
    fabric offers.
    """
    block_names = netlist.block_order()
    if len(block_names) > fabric.n_sites():
        raise ValueError(
            f"{len(block_names)} blocks do not fit {fabric.n_sites()} sites")

    rng = random.Random(seed)
    all_sites = list(fabric.sites())
    rng.shuffle(all_sites)
    sites: Dict[str, Site] = {name: all_sites[i]
                              for i, name in enumerate(block_names)}
    free_sites: List[Site] = all_sites[len(block_names):]
    pads = _assign_pads(netlist, fabric, rng)

    nets = [net for net in netlist.nets if net.n_terminals() >= 2]
    touching: Dict[str, List[int]] = {}
    for index, net in enumerate(nets):
        for terminal in _block_terminals(net, sites):
            touching.setdefault(terminal, []).append(index)

    def net_hpwl(net: Net) -> float:
        xs: List[int] = []
        ys: List[int] = []
        for terminal in ([net.source] if net.source else []) + net.sinks:
            site = sites.get(terminal)
            if site is not None:
                xs.append(site[0])
                ys.append(site[1])
        base_signal = net.name.split("#", 1)[0]
        pad = pads.get(base_signal)
        if pad is not None:
            # primary-input nets start at a pad; primary-output nets end
            # at one (duplicates do not change the bounding box)
            xs.append(pad[0])
            ys.append(pad[1])
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    net_costs = [net_hpwl(net) for net in nets]
    total = sum(net_costs)

    temperature = initial_temperature
    moves = 0
    n_moves = max(1, moves_per_block * max(len(block_names), 1))
    occupied: Dict[Site, str] = {site: name for name, site in sites.items()}

    while temperature > 0.01 and moves < n_moves:
        stage_moves = max(1, len(block_names) * 10)
        for _ in range(stage_moves):
            moves += 1
            mover = rng.choice(block_names)
            old_site = sites[mover]
            if free_sites and rng.random() < 0.3:
                new_site = rng.choice(free_sites)
                swap_with: Optional[str] = None
            else:
                new_site = rng.choice(all_sites)
                swap_with = occupied.get(new_site)
                if swap_with == mover:
                    continue

            affected = set(touching.get(mover, []))
            if swap_with is not None:
                affected |= set(touching.get(swap_with, []))
            before = sum(net_costs[i] for i in affected)

            sites[mover] = new_site
            occupied[new_site] = mover
            if swap_with is not None:
                sites[swap_with] = old_site
                occupied[old_site] = swap_with
            else:
                del occupied[old_site]
                if new_site in free_sites:
                    free_sites.remove(new_site)
                    free_sites.append(old_site)

            after = sum(net_hpwl(nets[i]) for i in affected)
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                for i in affected:
                    net_costs[i] = net_hpwl(nets[i])
                total += delta
            else:  # revert
                sites[mover] = old_site
                occupied[old_site] = mover
                if swap_with is not None:
                    sites[swap_with] = new_site
                    occupied[new_site] = swap_with
                else:
                    del occupied[new_site]
                    if old_site in free_sites:
                        free_sites.remove(old_site)
                        free_sites.append(new_site)
        temperature *= cooling

    total = sum(net_hpwl(net) for net in nets)
    return Placement(sites=sites, pads=pads, wirelength=total,
                     moves_evaluated=moves)


def _block_terminals(net: Net, sites: Dict[str, Site]) -> List[str]:
    terminals = []
    if net.source is not None:
        terminals.append(net.source)
    terminals.extend(net.sinks)
    return [t for t in terminals if t in sites]


def _assign_pads(netlist: Netlist, fabric: FPGAFabric,
                 rng: random.Random) -> Dict[str, Site]:
    """Spread primary I/O pads around the fabric perimeter."""
    perimeter: List[Site] = []
    w, h = fabric.width, fabric.height
    for x in range(w):
        perimeter.append((x, 0))
        perimeter.append((x, h - 1))
    for y in range(1, h - 1):
        perimeter.append((0, y))
        perimeter.append((w - 1, y))
    if not perimeter:
        perimeter = [(0, 0)]
    signals = list(netlist.primary_inputs) + list(netlist.primary_outputs)
    pads = {}
    for i, signal in enumerate(signals):
        pads[signal] = perimeter[i % len(perimeter)]
    return pads
