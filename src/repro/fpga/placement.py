"""Simulated-annealing placement.

Blocks are assigned to fabric sites minimizing total half-perimeter
wirelength (HPWL) over all nets.  The annealer uses swap/move
perturbations with a geometric cooling schedule; everything is seeded,
so placements (and therefore Table 2) are reproducible.
Primary I/O is modelled as perimeter pads spread around the die.

The accept/reject loop is shared; what differs per ``REPRO_KERNEL``
backend is the cost model behind it.  The scalar oracle re-scores every
net a move touches (the original implementation, kept for differential
testing); the array backend (:class:`repro.fpga.grid.IncrementalHPWL`)
keeps per-net cached bounding boxes with O(1) delta updates per move.
HPWL is integer tile arithmetic, so both models return identical deltas
and the same RNG stream drives identical placements on both backends.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels, perf
from repro.fpga.fabric import FPGAFabric, Site
from repro.fpga.netlist import Net, Netlist


@dataclass
class Placement:
    """A complete block-to-site assignment.

    Attributes
    ----------
    sites:
        block name -> tile coordinate.
    pads:
        primary I/O signal -> perimeter coordinate (may lie on the grid
        border tiles).
    wirelength:
        Final HPWL in tile units.
    moves_evaluated:
        Annealer statistics (for ablation benches; also accumulated
        into the ``fpga.place.moves_evaluated`` perf counter).
    """

    sites: Dict[str, Site]
    pads: Dict[str, Site]
    wirelength: float
    moves_evaluated: int = 0

    def site_of(self, terminal: str) -> Site:
        """Tile of a block or pad terminal."""
        if terminal in self.sites:
            return self.sites[terminal]
        return self.pads[terminal]


class _ScalarHPWL:
    """The original re-score-per-move cost model (the scalar oracle).

    Kept verbatim from the pre-array implementation for differential
    testing: a staged move applies to a private position copy and
    re-scores every touched net in full (and again on commit, exactly
    as the original annealer did).
    """

    def __init__(self, nets: Sequence[Net], sites: Dict[str, Site],
                 pads: Dict[str, Site]):
        self.nets = list(nets)
        self.pos = dict(sites)
        self.pads = pads
        self.touching: Dict[str, List[int]] = {}
        for index, net in enumerate(self.nets):
            for terminal in _block_terminals(net, self.pos):
                self.touching.setdefault(terminal, []).append(index)
        self.net_costs = [self._net_hpwl(net) for net in self.nets]
        self._staged: Optional[Tuple[list, set]] = None

    def _net_hpwl(self, net: Net) -> float:
        xs: List[int] = []
        ys: List[int] = []
        for terminal in ([net.source] if net.source else []) + net.sinks:
            site = self.pos.get(terminal)
            if site is not None:
                xs.append(site[0])
                ys.append(site[1])
        base_signal = net.name.split("#", 1)[0]
        pad = self.pads.get(base_signal)
        if pad is not None:
            # primary-input nets start at a pad; primary-output nets end
            # at one (duplicates do not change the bounding box)
            xs.append(pad[0])
            ys.append(pad[1])
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def move_delta(self, mover: str, new_site: Site,
                   swap_with: Optional[str], old_site: Site) -> float:
        affected = set(self.touching.get(mover, []))
        if swap_with is not None:
            affected |= set(self.touching.get(swap_with, []))
        before = sum(self.net_costs[i] for i in affected)
        undo_pos = [(mover, self.pos[mover])]
        self.pos[mover] = new_site
        if swap_with is not None:
            undo_pos.append((swap_with, self.pos[swap_with]))
            self.pos[swap_with] = old_site
        after = sum(self._net_hpwl(self.nets[i]) for i in affected)
        self._staged = (undo_pos, affected)
        return after - before

    def commit(self) -> None:
        _undo_pos, affected = self._staged
        for index in affected:
            self.net_costs[index] = self._net_hpwl(self.nets[index])
        self._staged = None

    def rollback(self) -> None:
        undo_pos, _affected = self._staged
        for name, site in undo_pos:
            self.pos[name] = site
        self._staged = None

    def total(self) -> float:
        return float(sum(self.net_costs))

    def final_total(self) -> float:
        return float(sum(self._net_hpwl(net) for net in self.nets))


def _make_cost_engine(nets: Sequence[Net], sites: Dict[str, Site],
                      pads: Dict[str, Site]):
    """The backend-selected HPWL engine (array-backed or scalar oracle)."""
    if kernels.enabled():
        from repro.fpga.grid import IncrementalHPWL
        return IncrementalHPWL(nets, sites, pads)
    return _ScalarHPWL(nets, sites, pads)


def place(netlist: Netlist, fabric: FPGAFabric, seed: int = 0,
          moves_per_block: int = 200,
          initial_temperature: float = 2.0,
          cooling: float = 0.93) -> Placement:
    """Anneal a placement of ``netlist`` onto ``fabric``.

    Raises ``ValueError`` when the netlist needs more sites than the
    fabric offers.
    """
    with perf.timer("fpga.place"):
        placement = _place(netlist, fabric, seed, moves_per_block,
                           initial_temperature, cooling)
    perf.count("fpga.place.moves_evaluated", placement.moves_evaluated)
    return placement


def _place(netlist: Netlist, fabric: FPGAFabric, seed: int,
           moves_per_block: int, initial_temperature: float,
           cooling: float) -> Placement:
    block_names = netlist.block_order()
    if len(block_names) > fabric.n_sites():
        raise ValueError(
            f"{len(block_names)} blocks do not fit {fabric.n_sites()} sites")

    rng = random.Random(seed)
    all_sites = list(fabric.sites())
    rng.shuffle(all_sites)
    sites: Dict[str, Site] = {name: all_sites[i]
                              for i, name in enumerate(block_names)}
    free_sites: List[Site] = all_sites[len(block_names):]
    pads = _assign_pads(netlist, fabric, rng)

    nets = [net for net in netlist.nets if net.n_terminals() >= 2]
    engine = _make_cost_engine(nets, sites, pads)
    total = engine.total()

    temperature = initial_temperature
    moves = 0
    n_moves = max(1, moves_per_block * max(len(block_names), 1))
    occupied: Dict[Site, str] = {site: name for name, site in sites.items()}

    while temperature > 0.01 and moves < n_moves:
        stage_moves = max(1, len(block_names) * 10)
        for _ in range(stage_moves):
            moves += 1
            mover = rng.choice(block_names)
            old_site = sites[mover]
            if free_sites and rng.random() < 0.3:
                new_site = rng.choice(free_sites)
                swap_with: Optional[str] = None
            else:
                new_site = rng.choice(all_sites)
                swap_with = occupied.get(new_site)
                if swap_with == mover:
                    continue

            delta = engine.move_delta(mover, new_site, swap_with, old_site)

            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                engine.commit()
                sites[mover] = new_site
                occupied[new_site] = mover
                if swap_with is not None:
                    sites[swap_with] = old_site
                    occupied[old_site] = swap_with
                else:
                    del occupied[old_site]
                    free_sites.remove(new_site)
                    free_sites.append(old_site)
                total += delta
            else:
                engine.rollback()
        temperature *= cooling

    total = engine.final_total()
    return Placement(sites=sites, pads=pads, wirelength=total,
                     moves_evaluated=moves)


def evaluate_moves_batch(placement: Placement, netlist: Netlist,
                         blocks: Sequence[str],
                         sites: Sequence[Site]) -> List[float]:
    """HPWL deltas of single-block move proposals, scored in one batch.

    A read-only what-if evaluator over a finished placement: proposal
    ``i`` moves ``blocks[i]`` to ``sites[i]`` with everything else
    fixed.  On the array backend the whole batch is one vectorized
    pass over per-net extreme statistics; the scalar oracle scores the
    proposals one by one.  Both return identical (integer) deltas.
    """
    nets = [net for net in netlist.nets if net.n_terminals() >= 2]
    engine = _make_cost_engine(nets, placement.sites, placement.pads)
    if kernels.enabled():
        return [float(d) for d in
                engine.evaluate_moves_batch(blocks, sites)]
    deltas = []
    for name, site in zip(blocks, sites):
        deltas.append(float(engine.move_delta(name, site, None,
                                              placement.sites[name])))
        engine.rollback()
    return deltas


def _block_terminals(net: Net, sites: Dict[str, Site]) -> List[str]:
    terminals = []
    if net.source is not None:
        terminals.append(net.source)
    terminals.extend(net.sinks)
    return [t for t in terminals if t in sites]


def _assign_pads(netlist: Netlist, fabric: FPGAFabric,
                 rng: random.Random) -> Dict[str, Site]:
    """Spread primary I/O pads around the fabric perimeter."""
    perimeter: List[Site] = []
    w, h = fabric.width, fabric.height
    for x in range(w):
        perimeter.append((x, 0))
        perimeter.append((x, h - 1))
    for y in range(1, h - 1):
        perimeter.append((0, y))
        perimeter.append((w - 1, y))
    if not perimeter:
        perimeter = [(0, 0)]
    signals = list(netlist.primary_inputs) + list(netlist.primary_outputs)
    pads = {}
    for i, signal in enumerate(signals):
        pads[signal] = perimeter[i % len(perimeter)]
    return pads
