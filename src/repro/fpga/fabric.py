"""The FPGA fabric: a square grid of CLB tiles and routing channels.

The fabric is an island-style array: ``width x height`` CLB sites,
with horizontal and vertical routing channels between neighbouring
tiles.  Each channel segment (grid edge) has a track ``channel_capacity``;
the router negotiates over-subscribed segments.  Physical geometry
(tile pitch, die side) derives from the CLB footprint so that shrinking
the CLB shrinks every wire — the mechanism behind Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.fpga.clb import CLBSpec

#: A tile coordinate (column, row).
Site = Tuple[int, int]
#: A routing segment between two adjacent tiles (canonical order).
Edge = Tuple[Site, Site]


@dataclass
class FPGAFabric:
    """An island-style FPGA fabric.

    Attributes
    ----------
    width, height:
        Grid dimensions in tiles.
    clb:
        The CLB variant populating every site.
    channel_capacity:
        Routing tracks per channel segment.
    """

    width: int
    height: int
    clb: CLBSpec
    channel_capacity: int = 12

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("fabric must have at least one tile")
        if self.channel_capacity < 1:
            raise ValueError("channel capacity must be positive")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def n_sites(self) -> int:
        """Total CLB sites."""
        return self.width * self.height

    def sites(self) -> Iterator[Site]:
        """All tile coordinates, row-major."""
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def contains(self, site: Site) -> bool:
        """Whether a coordinate is on the grid."""
        x, y = site
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbors(self, site: Site) -> List[Site]:
        """4-connected neighbouring tiles."""
        x, y = site
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [s for s in candidates if self.contains(s)]

    def edge(self, a: Site, b: Site) -> Edge:
        """The canonical (sorted) edge between two adjacent sites."""
        return (a, b) if a <= b else (b, a)

    def edges(self) -> Iterator[Edge]:
        """All channel segments of the grid."""
        for x, y in self.sites():
            if x + 1 < self.width:
                yield ((x, y), (x + 1, y))
            if y + 1 < self.height:
                yield ((x, y), (x, y + 1))

    # ------------------------------------------------------------------
    # physical scale
    # ------------------------------------------------------------------
    def tile_pitch_l(self) -> float:
        """Tile pitch in lithography units (from the CLB footprint)."""
        return self.clb.tile_pitch_l()

    def die_area_l2(self) -> float:
        """Total die area in ``L**2``."""
        return self.n_sites() * self.clb.area_l2

    def occupancy(self, n_blocks: int) -> float:
        """Fraction of die area occupied by ``n_blocks`` CLBs."""
        if n_blocks > self.n_sites():
            raise ValueError("more blocks than sites")
        return n_blocks / self.n_sites()

    # ------------------------------------------------------------------
    # sizing helpers
    # ------------------------------------------------------------------
    @classmethod
    def sized_for(cls, n_blocks: int, clb: CLBSpec, target_occupancy: float,
                  channel_capacity: int = 12) -> "FPGAFabric":
        """The smallest square fabric with occupancy <= ``target_occupancy``."""
        if not 0 < target_occupancy <= 1:
            raise ValueError("target occupancy must be in (0, 1]")
        side = 1
        while side * side * target_occupancy < n_blocks:
            side += 1
        return cls(side, side, clb, channel_capacity)

    @classmethod
    def same_die(cls, reference: "FPGAFabric", clb: CLBSpec,
                 channel_capacity: int = None) -> "FPGAFabric":  # type: ignore[assignment]
        """A fabric with a different CLB on (approximately) the same die.

        A smaller CLB yields more sites on the same silicon: the grid
        side grows by ``sqrt(area_ratio)`` — exactly the paper's
        emulation of the CNFET FPGA (half-area CLBs on the same die).
        """
        ratio = (reference.clb.area_l2 / clb.area_l2) ** 0.5
        side = max(1, round(reference.width * ratio))
        capacity = (channel_capacity if channel_capacity is not None
                    else reference.channel_capacity)
        return cls(side, side, clb, capacity)

    def __repr__(self) -> str:
        return (f"FPGAFabric({self.width}x{self.height}, clb={self.clb.name}, "
                f"cap={self.channel_capacity})")
