"""A from-scratch PLA-based FPGA substrate (Table 2's testbed).

The paper emulates an ambipolar-CNFET FPGA as "a classical one with
half of the area for every CLB", implementing the same function, and
reports occupancy and maximum frequency.  This subpackage provides the
whole flow needed to re-run that experiment mechanistically:

* :mod:`repro.fpga.clb` — CLB capacity/area/delay specs (standard
  dual-polarity PLA CLBs vs ambipolar GNOR CLBs);
* :mod:`repro.fpga.netlist` — block/net netlists, including the
  dual-polarity net expansion of standard fabrics;
* :mod:`repro.fpga.fabric` — the tile grid with channel capacities;
* :mod:`repro.fpga.grid` — the array-backed grid engine: packed
  site/edge index arrays, incremental-HPWL placement costs and flat
  wavefront state shared by placement and routing (selected through
  the same ``REPRO_KERNEL`` switch as the logic kernels, with the
  scalar loops kept as the bit-identical oracle);
* :mod:`repro.fpga.placement` — simulated-annealing placement;
* :mod:`repro.fpga.routing` — a PathFinder-style congestion-negotiating
  router;
* :mod:`repro.fpga.timing` — wire + logic delay, critical path,
  frequency;
* :mod:`repro.fpga.emulate` — the Table 2 protocol end to end.
"""

from repro.fpga.clb import CLBSpec, standard_pla_clb, ambipolar_pla_clb
from repro.fpga.netlist import Net, Netlist, build_netlist
from repro.fpga.fabric import FPGAFabric
from repro.fpga.placement import Placement, evaluate_moves_batch, place
from repro.fpga.routing import RoutingResult, route
from repro.fpga.timing import TimingReport, analyze_timing
from repro.fpga.emulate import EmulationReport, run_emulation, generate_workload

__all__ = [
    "CLBSpec",
    "standard_pla_clb",
    "ambipolar_pla_clb",
    "Net",
    "Netlist",
    "build_netlist",
    "FPGAFabric",
    "Placement",
    "evaluate_moves_batch",
    "place",
    "RoutingResult",
    "route",
    "TimingReport",
    "analyze_timing",
    "EmulationReport",
    "run_emulation",
    "generate_workload",
]
