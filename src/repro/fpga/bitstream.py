"""Configuration bitstreams for the ambipolar-CNFET fabric.

The paper's fabric is *programmable*: every device's polarity gate
stores one of three charges.  This module defines a compact on-disk
format for that configuration — two bits per device — and a loader that
replays a bitstream through the Fig 4 programming controller onto a
live array.

Format (little-endian)::

    magic   4 bytes  b"ACNF"
    version 1 byte   (1)
    kind    1 byte   1 = GNOR PLA (both planes + phases), 2 = crossbar
    dims    3 x u16  PLA: inputs, outputs, products; crossbar: h, v, 0
    payload ceil(bits / 8) bytes, 2 bits per device, row-major
            (PLA order: AND plane rows, then OR plane by output, then
             one bit per output-buffer phase, padded to a byte)
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.core.device import DEFAULT_PARAMETERS, DeviceParameters, Polarity
from repro.core.gnor import InputConfig
from repro.core.interconnect import CrosspointArray
from repro.core.pla import AmbipolarPLA
from repro.core.programming import ProgrammingController, ProgrammingReport
from repro.mapping.gnor_map import GNORPlaneConfig

MAGIC = b"ACNF"
VERSION = 1
KIND_PLA = 1
KIND_CROSSBAR = 2

_CONFIG_TO_BITS = {InputConfig.DROP: 0, InputConfig.PASS: 1,
                   InputConfig.INVERT: 2}
_BITS_TO_CONFIG = {v: k for k, v in _CONFIG_TO_BITS.items()}


class BitstreamError(ValueError):
    """Raised on malformed bitstream data."""


class _BitWriter:
    def __init__(self):
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        for i in range(width):
            self._bits.append((value >> i) & 1)

    def to_bytes(self) -> bytes:
        data = bytearray((len(self._bits) + 7) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                data[i // 8] |= 1 << (i % 8)
        return bytes(data)


class _BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, width: int) -> int:
        value = 0
        for i in range(width):
            byte_index, bit_index = divmod(self._pos, 8)
            if byte_index >= len(self._data):
                raise BitstreamError("truncated payload")
            value |= ((self._data[byte_index] >> bit_index) & 1) << i
            self._pos += 1
        return value


# ----------------------------------------------------------------------
# PLA bitstreams
# ----------------------------------------------------------------------
def serialize_pla(config: GNORPlaneConfig) -> bytes:
    """Encode a full two-plane GNOR configuration."""
    header = MAGIC + struct.pack("<BBHHH", VERSION, KIND_PLA,
                                 config.n_inputs, config.n_outputs,
                                 config.n_products)
    writer = _BitWriter()
    for row in config.and_plane:
        for device in row:
            writer.write(_CONFIG_TO_BITS[device], 2)
    for row in config.or_plane:
        for device in row:
            writer.write(_CONFIG_TO_BITS[device], 2)
    for inverted in config.output_inverted:
        writer.write(1 if inverted else 0, 1)
    return header + writer.to_bytes()


def deserialize_pla(data: bytes) -> GNORPlaneConfig:
    """Decode a PLA bitstream back into a plane configuration."""
    kind, dims, payload = _parse_header(data)
    if kind != KIND_PLA:
        raise BitstreamError(f"expected a PLA bitstream, got kind {kind}")
    n_inputs, n_outputs, n_products = dims
    reader = _BitReader(payload)

    def read_config() -> InputConfig:
        bits = reader.read(2)
        if bits not in _BITS_TO_CONFIG:
            raise BitstreamError(f"invalid device code {bits}")
        return _BITS_TO_CONFIG[bits]

    and_plane = [[read_config() for _ in range(n_inputs)]
                 for _ in range(n_products)]
    or_plane = [[read_config() for _ in range(n_products)]
                for _ in range(n_outputs)]
    output_inverted = [bool(reader.read(1)) for _ in range(n_outputs)]
    return GNORPlaneConfig(n_inputs, n_outputs, n_products,
                           and_plane, or_plane, output_inverted)


def program_pla_from_bitstream(data: bytes,
                               params: DeviceParameters = DEFAULT_PARAMETERS
                               ) -> Tuple[AmbipolarPLA, List[ProgrammingReport]]:
    """Instantiate a blank array and program it cycle-by-cycle.

    The loader builds an :class:`AmbipolarPLA` for the bitstream's
    dimensions and pushes every device's polarity through the
    row/column-select protocol, returning the verified programming
    reports of both planes.
    """
    config = deserialize_pla(data)
    pla = AmbipolarPLA(config, params)
    reports = []
    # Re-walk both planes: blank the devices, then program from the
    # decoded configuration (proving the loader path, not the mapper's).
    and_grid = [gate.devices for gate in pla.and_rows]
    for row in and_grid:
        for device in row:
            device.program(Polarity.OFF)
    targets = [[c.to_polarity() for c in row] for row in config.and_plane]
    reports.append(ProgrammingController(and_grid).program_array(targets))
    if pla.or_columns:
        or_grid = [[pla.or_columns[k].devices[r]
                    for k in range(config.n_outputs)]
                   for r in range(config.n_products)]
        for row in or_grid:
            for device in row:
                device.program(Polarity.OFF)
        or_targets = [[config.or_plane[k][r].to_polarity()
                       for k in range(config.n_outputs)]
                      for r in range(config.n_products)]
        reports.append(ProgrammingController(or_grid).program_array(or_targets))
    return pla, reports


# ----------------------------------------------------------------------
# crossbar bitstreams
# ----------------------------------------------------------------------
def serialize_crossbar(array: CrosspointArray) -> bytes:
    """Encode a crosspoint array's connection pattern."""
    header = MAGIC + struct.pack("<BBHHH", VERSION, KIND_CROSSBAR,
                                 array.n_horizontal, array.n_vertical, 0)
    writer = _BitWriter()
    for h in range(array.n_horizontal):
        for v in range(array.n_vertical):
            writer.write(1 if array.is_connected(h, v) else 0, 2)
    return header + writer.to_bytes()


def deserialize_crossbar(data: bytes,
                         params: DeviceParameters = DEFAULT_PARAMETERS
                         ) -> CrosspointArray:
    """Decode and program a crossbar from its bitstream."""
    kind, dims, payload = _parse_header(data)
    if kind != KIND_CROSSBAR:
        raise BitstreamError(f"expected a crossbar bitstream, got kind {kind}")
    n_h, n_v, _zero = dims
    reader = _BitReader(payload)
    array = CrosspointArray(n_h, n_v, params)
    for h in range(n_h):
        for v in range(n_v):
            if reader.read(2):
                array.connect(h, v)
            else:
                array.disconnect(h, v)
    return array


def _parse_header(data: bytes) -> Tuple[int, Tuple[int, int, int], bytes]:
    if len(data) < 12 or data[:4] != MAGIC:
        raise BitstreamError("bad magic")
    version, kind, a, b, c = struct.unpack("<BBHHH", data[4:12])
    if version != VERSION:
        raise BitstreamError(f"unsupported version {version}")
    return kind, (a, b, c), data[12:]
