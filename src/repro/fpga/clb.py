"""Configurable Logic Block (CLB) specifications.

A PLA-based CLB wraps one PLA plus its routing interface.  Two variants
matter for Table 2:

* the **standard** CLB: a dual-column PLA (Flash-style cells) that must
  receive *both* polarities of every input from the routing fabric;
* the **ambipolar** CLB: a GNOR PLA (CNFET cells, one column per
  input) that generates inversions internally.

The paper's emulation protocol simply halves the CLB area; we keep
that as the default (``area_factor=0.5``) and also expose the
first-principles estimate (logic-array cells + per-routed-pin switch
area) used by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.area import (CNFET_AMBIPOLAR, FLASH, Technology,
                             _as_technology, pla_area)
from repro.core.timing import (DEFAULT_TIMING, PLATimingModel,
                               TimingParameters, as_timing)


@dataclass(frozen=True)
class CLBSpec:
    """Capacity, area and delay of one CLB.

    Attributes
    ----------
    name:
        Variant name for reports.
    max_inputs, max_outputs, max_products:
        Logic capacity handed to the partitioner.
    area_l2:
        CLB footprint in ``L**2`` (sets the fabric's tile pitch).
    dual_polarity_inputs:
        True when the fabric must route both polarities of every input
        signal to this CLB (standard PLAs).
    technology:
        Cell technology of the internal PLA (for delay modelling).
    """

    name: str
    max_inputs: int
    max_outputs: int
    max_products: int
    area_l2: float
    dual_polarity_inputs: bool
    technology: Technology

    def tile_pitch_l(self) -> float:
        """Tile pitch in L units: the square root of the CLB footprint."""
        return self.area_l2 ** 0.5

    def logic_delay(self, timing: TimingParameters = DEFAULT_TIMING) -> float:
        """Worst-case evaluate delay of a fully-used internal PLA [s].

        ``timing`` may also be a :class:`~repro.tech.TechDescriptor`.
        """
        timing = as_timing(timing)
        columns = (2 * self.max_inputs if self.dual_polarity_inputs
                   else self.max_inputs)
        model = PLATimingModel(self.max_inputs, self.max_outputs,
                               self.max_products, timing,
                               n_input_columns=columns)
        return model.evaluate_delay()

    def routed_pins(self) -> int:
        """Signals the fabric must deliver/collect at this CLB."""
        inputs = (2 * self.max_inputs if self.dual_polarity_inputs
                  else self.max_inputs)
        return inputs + self.max_outputs


#: Per-routed-pin connection-block switch area [L**2] used by the
#: first-principles CLB area estimate.
PIN_SWITCH_AREA_L2 = 160.0


def logic_array_area(spec_like_inputs: int, outputs: int, products: int,
                     technology: Technology) -> float:
    """Area of the CLB-internal PLA array alone."""
    return pla_area(technology, spec_like_inputs, outputs, products)


def first_principles_area(max_inputs: int, max_outputs: int,
                          max_products: int, technology: Technology,
                          dual_polarity: bool) -> float:
    """Logic array + pin interface estimate of a CLB footprint."""
    array = pla_area(technology, max_inputs, max_outputs, max_products)
    pins = (2 * max_inputs if dual_polarity else max_inputs) + max_outputs
    return array + pins * PIN_SWITCH_AREA_L2


def standard_pla_clb(max_inputs: int = 9, max_outputs: int = 4,
                     max_products: int = 20,
                     technology: Technology = FLASH) -> CLBSpec:
    """The standard (dual-polarity, Flash-cell) CLB of the Table 2 baseline.

    ``technology`` (a :class:`Technology` or a
    :class:`~repro.tech.TechDescriptor`) selects the cell library; the
    default reproduces the Table 2 baseline.
    """
    technology = _as_technology(technology)
    area = first_principles_area(max_inputs, max_outputs, max_products,
                                 technology, dual_polarity=True)
    return CLBSpec(
        name="standard-pla",
        max_inputs=max_inputs,
        max_outputs=max_outputs,
        max_products=max_products,
        area_l2=area,
        dual_polarity_inputs=True,
        technology=technology,
    )


def ambipolar_pla_clb(max_inputs: int = 9, max_outputs: int = 4,
                      max_products: int = 20,
                      area_factor: float = 0.5,
                      technology: Technology = CNFET_AMBIPOLAR) -> CLBSpec:
    """The ambipolar-CNFET CLB, emulated per the paper's protocol.

    The paper emulates the CNFET FPGA as a classical one "with half of
    the area for every CLB"; ``area_factor`` applies that ratio to the
    standard CLB's footprint (pass ``None`` to use the first-principles
    estimate instead).  ``technology`` (a :class:`Technology` or a
    :class:`~repro.tech.TechDescriptor`) selects the single-column cell
    library for the first-principles path and delay modelling.
    """
    technology = _as_technology(technology)
    if area_factor is not None:
        base = standard_pla_clb(max_inputs, max_outputs, max_products)
        area = base.area_l2 * area_factor
    else:
        area = first_principles_area(max_inputs, max_outputs, max_products,
                                     technology, dual_polarity=False)
    return CLBSpec(
        name="ambipolar-pla",
        max_inputs=max_inputs,
        max_outputs=max_outputs,
        max_products=max_products,
        area_l2=area,
        dual_polarity_inputs=False,
        technology=technology,
    )
