"""Shared user-facing exception types.

Anything a *user input* can trigger — a malformed ``.pla`` file, a bad
KISS2 state table, an unknown benchmark name — raises
:class:`ReproInputError` (or a subclass) carrying enough context to
print a one-line diagnosis at the CLI boundary instead of a traceback
from deep inside a parser.
"""

from __future__ import annotations

from typing import Optional


class ReproInputError(ValueError):
    """Malformed user input (file content, CLI argument, ...).

    Parameters
    ----------
    message:
        What is wrong.
    source:
        The file (or logical source) the input came from.
    line:
        1-based line number inside ``source``, when known.
    """

    def __init__(self, message: str, source: Optional[str] = None,
                 line: Optional[int] = None):
        self.message = message
        self.source = source
        self.line = line
        super().__init__(str(self))

    def __str__(self) -> str:
        prefix = ""
        if self.source is not None and self.line is not None:
            prefix = f"{self.source}:{self.line}: "
        elif self.source is not None:
            prefix = f"{self.source}: "
        return prefix + self.message


__all__ = ["ReproInputError"]
