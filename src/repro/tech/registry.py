"""The built-in technology registry.

Three descriptors reproduce the paper's Table 1 comparison
bit-identically:

* ``flash`` — 40 L**2 floating-gate cell, dual input columns (ITRS);
* ``eeprom`` — 100 L**2 cell, dual input columns (ITRS);
* ``cnfet`` — 60 L**2 ambipolar-CNFET GNOR cell, single input column
  (the misaligned-CNT-immune layout rules of [5]); this is also the
  default technology every model layer derives its parameter objects
  from.

``register`` adds user descriptors for the process lifetime; loading
from files is :mod:`repro.tech.loader`'s job.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tech.descriptor import TechDescriptor

#: The ambipolar-CNFET assessment descriptor.  Single source of every
#: electrical/geometric default the core models used to hard-code:
#: 60 L**2 contacted cell (Table 1), VDD-normalized rails, and the
#: representative ballistic-CNFET RC values the delay model uses
#: relatively.
CNFET = TechDescriptor(
    name="cnfet",
    cell_area_l2=60.0,
    dual_input_columns=False,
    description="Ambipolar-CNFET GNOR cell (scaling rules of [5], "
                "Table 1); paper assessment defaults",
)

#: Flash floating-gate baseline (ITRS-derived, Table 1).  Electrical
#: fields keep the shared assessment defaults: the paper compares the
#: technologies through geometry (cell area, column count), not
#: through per-technology RC extraction.
FLASH = CNFET.derive(
    name="flash",
    cell_area_l2=40.0,
    dual_input_columns=True,
    description="Flash floating-gate PLA cell (ITRS-derived, Table 1)",
)

#: EEPROM baseline (ITRS-derived, Table 1).
EEPROM = CNFET.derive(
    name="eeprom",
    cell_area_l2=100.0,
    dual_input_columns=True,
    description="EEPROM PLA cell (ITRS-derived, Table 1)",
)

#: Name -> descriptor for the paper's technologies, in Table 1 column
#: order (insertion order is meaningful: ``names()`` preserves it).
BUILTIN: Dict[str, TechDescriptor] = {
    "flash": FLASH,
    "eeprom": EEPROM,
    "cnfet": CNFET,
}

#: Convenience aliases accepted anywhere a registry name is.
ALIASES: Dict[str, str] = {
    "cnfet-ambipolar": "cnfet",
    "ambipolar": "cnfet",
}

#: The technology everything defaults to when neither ``REPRO_TECH``
#: nor an explicit override names one.
DEFAULT_TECH = "cnfet"

#: User-registered descriptors (process lifetime only).
_USER: Dict[str, TechDescriptor] = {}


def get_tech(name: str) -> TechDescriptor:
    """The registered descriptor called ``name`` (alias-aware).

    Raises :class:`KeyError` with the known names for typos; the
    loader turns that into a :class:`~repro.errors.ReproInputError`.
    """
    key = ALIASES.get(name, name)
    descriptor = _USER.get(key) or BUILTIN.get(key)
    if descriptor is None:
        raise KeyError(f"unknown technology {name!r} "
                       f"(known: {', '.join(names())})")
    return descriptor


def names() -> List[str]:
    """Registered technology names, built-ins first."""
    return list(BUILTIN) + [n for n in _USER if n not in BUILTIN]


def register(descriptor: TechDescriptor, replace: bool = False) -> None:
    """Register a user descriptor under its own name.

    Built-in names are protected: the paper's technologies must keep
    reproducing Table 1 bit-identically.
    """
    if descriptor.name in BUILTIN or descriptor.name in ALIASES:
        raise ValueError(f"cannot shadow built-in technology "
                         f"{descriptor.name!r}")
    if descriptor.name in _USER and not replace:
        raise ValueError(f"technology {descriptor.name!r} already "
                         f"registered (pass replace=True)")
    _USER[descriptor.name] = descriptor


def unregister(name: str) -> None:
    """Remove a user-registered descriptor (tests use this)."""
    _USER.pop(name, None)


__all__ = ["ALIASES", "BUILTIN", "CNFET", "DEFAULT_TECH", "EEPROM",
           "FLASH", "get_tech", "names", "register", "unregister"]
