"""Declarative technology descriptors.

Every electrical and geometric constant the paper's assessment uses —
basic-cell areas (Table 1, first row), the representative ballistic-
CNFET RC values behind the delay model, the wire/buffer constants of
the FPGA emulation — lives in one :class:`TechDescriptor` per
technology instead of being scattered over ``core/area.py``,
``core/device.py`` and ``core/timing.py`` as module constants.  The
area, timing, power, variation, fabric and FPGA models all *derive*
their parameter objects from a descriptor, so users can bring their own
device parameters as data (a JSON/TOML file, see
:mod:`repro.tech.loader`) without touching code.

A descriptor is a frozen, validated dataclass with a canonical-JSON
content digest: two descriptors with the same resolved parameters hash
identically, and the digest becomes part of every artifact-store cache
key (:mod:`repro.store.keys`), so results computed under different
technologies can never collide.

This module is deliberately free of imports from the model layers
(``repro.core`` and friends import *us*, never the reverse).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, fields, replace
from typing import Any, Dict

#: Version of the descriptor's serialized shape.  Bump when fields are
#: added/renamed/re-scaled so stale files are rejected loudly instead
#: of silently misread.
TECH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TechDescriptor:
    """One PLA implementation technology, fully parameterized.

    The three required fields are the architectural ones the paper's
    Table 1 model needs; everything else defaults to the ambipolar-
    CNFET assessment values and only matters for the delay, power and
    variation models.

    Attributes
    ----------
    name:
        Registry / display name (also used in cache-key provenance).
    cell_area_l2:
        Contacted basic-cell area in units of the lithography
        resolution squared (``L**2``; Table 1, first row).
    dual_input_columns:
        True when both polarities of every input need their own column
        (classical floating-gate PLAs); False for the ambipolar-CNFET
        GNOR architecture, which programs polarity per device.
    description:
        Free-form provenance note.
    vdd:
        Supply voltage [V]; the polarity-gate levels derive from it.
    r_on:
        On-resistance of a conducting tube bundle [ohm].
    c_gate:
        Control-gate capacitance [F].
    c_junction:
        Drain/source junction capacitance [F].
    tubes_per_device:
        Parallel CNTs per channel.
    pg_tolerance:
        Fraction of ``vdd`` within which a stored polarity-gate charge
        still reads as the intended state.
    c_wire_per_cell:
        Wire capacitance added per crossed basic cell [F].
    buffer_delay:
        Fixed output-buffer delay [s].
    sigma_r_on, sigma_capacitance:
        Relative 1-sigma spreads of the variation model.
    sigma_pg_charge:
        Absolute 1-sigma spread of the stored PG voltage [V].
    wire_segment_delay_per_l:
        FPGA channel-segment delay per unit tile pitch [s/L]
        (calibrated so the standard Table 2 fabric lands near the
        paper's 154 MHz).
    wire_congestion_beta:
        Quadratic congestion-penalty coefficient of the FPGA router's
        delay model.
    wire_connection_delay:
        Fixed connection-block entry/exit delay per net [s].
    """

    name: str
    cell_area_l2: float
    dual_input_columns: bool
    description: str = ""
    # -- device electrical ------------------------------------------------
    vdd: float = 1.0
    r_on: float = 25e3
    c_gate: float = 6e-18
    c_junction: float = 3e-18
    tubes_per_device: int = 4
    pg_tolerance: float = 0.25
    # -- wire / timing ----------------------------------------------------
    c_wire_per_cell: float = 8e-18
    buffer_delay: float = 4e-12
    # -- variation --------------------------------------------------------
    sigma_r_on: float = 0.15
    sigma_capacitance: float = 0.10
    sigma_pg_charge: float = 0.05
    # -- FPGA wire model --------------------------------------------------
    wire_segment_delay_per_l: float = 4.7e-13
    wire_congestion_beta: float = 3.5
    wire_connection_delay: float = 7.7e-11

    def __post_init__(self) -> None:
        validate_descriptor(self)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The canonical JSON-shaped form (schema-versioned, flat)."""
        data: Dict[str, Any] = {"schema": TECH_SCHEMA_VERSION}
        for spec in fields(self):
            data[spec.name] = getattr(self, spec.name)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any],
                  default_name: str = None) -> "TechDescriptor":
        """Build and validate a descriptor from a JSON-shaped dict.

        Raises :class:`ValueError` on unknown keys, a wrong ``schema``
        tag, or any out-of-range field — the loader wraps these with
        the file/line context.
        """
        if not isinstance(data, dict):
            raise ValueError(f"descriptor must be an object, got "
                             f"{type(data).__name__}")
        payload = dict(data)
        schema = payload.pop("schema", TECH_SCHEMA_VERSION)
        if schema != TECH_SCHEMA_VERSION:
            raise ValueError(f"unsupported descriptor schema {schema!r} "
                             f"(this build reads schema "
                             f"{TECH_SCHEMA_VERSION})")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown descriptor field(s): "
                             f"{', '.join(unknown)} "
                             f"(known: {', '.join(sorted(known))})")
        if "name" not in payload:
            if default_name is None:
                raise ValueError("descriptor needs a 'name' field")
            payload["name"] = default_name
        missing = sorted(name for name in ("cell_area_l2",
                                           "dual_input_columns")
                         if name not in payload)
        if missing:
            raise ValueError(f"missing required field(s): "
                             f"{', '.join(missing)}")
        return cls(**payload)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (cache-key material)."""
        return _digest_cached(self)

    def derive(self, **changes: Any) -> "TechDescriptor":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def input_columns(self, n_inputs: int) -> int:
        """Physical input columns for ``n_inputs`` logical inputs."""
        return 2 * n_inputs if self.dual_input_columns else n_inputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TechDescriptor({self.name!r}, "
                f"cell_area_l2={self.cell_area_l2:g}, "
                f"dual_input_columns={self.dual_input_columns})")


#: (field, predicate, requirement) validation table.
_VALIDATORS = (
    ("cell_area_l2", lambda v: v > 0, "must be > 0"),
    ("vdd", lambda v: v > 0, "must be > 0"),
    ("r_on", lambda v: v > 0, "must be > 0"),
    ("c_gate", lambda v: v > 0, "must be > 0"),
    ("c_junction", lambda v: v > 0, "must be > 0"),
    ("tubes_per_device", lambda v: v >= 1, "must be >= 1"),
    ("pg_tolerance", lambda v: 0 < v < 0.5,
     "must be in (0, 0.5) so the n/p read windows cannot overlap"),
    ("c_wire_per_cell", lambda v: v > 0, "must be > 0"),
    ("buffer_delay", lambda v: v >= 0, "must be >= 0"),
    ("sigma_r_on", lambda v: v >= 0, "must be >= 0"),
    ("sigma_capacitance", lambda v: v >= 0, "must be >= 0"),
    ("sigma_pg_charge", lambda v: v >= 0, "must be >= 0"),
    ("wire_segment_delay_per_l", lambda v: v > 0, "must be > 0"),
    ("wire_congestion_beta", lambda v: v >= 0, "must be >= 0"),
    ("wire_connection_delay", lambda v: v >= 0, "must be >= 0"),
)

#: Fields that must be real numbers (bool is excluded explicitly:
#: ``True`` is an ``int`` in Python and would slip through).
_NUMERIC_FIELDS = tuple(name for name, _p, _r in _VALIDATORS)


def validate_descriptor(descriptor: TechDescriptor) -> None:
    """Raise :class:`ValueError` for any out-of-range or mistyped field."""
    name = descriptor.name
    if not isinstance(name, str) or not name or name != name.strip() \
            or any(ch.isspace() for ch in name):
        raise ValueError(f"field 'name': must be a non-empty string "
                         f"without whitespace, got {name!r}")
    if not isinstance(descriptor.description, str):
        raise ValueError("field 'description': must be a string")
    if not isinstance(descriptor.dual_input_columns, bool):
        raise ValueError("field 'dual_input_columns': must be a boolean")
    if not isinstance(descriptor.tubes_per_device, int) \
            or isinstance(descriptor.tubes_per_device, bool):
        raise ValueError("field 'tubes_per_device': must be an integer")
    for field_name in _NUMERIC_FIELDS:
        value = getattr(descriptor, field_name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"field {field_name!r}: must be a number, "
                             f"got {type(value).__name__}")
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"field {field_name!r}: must be finite")
    for field_name, predicate, requirement in _VALIDATORS:
        value = getattr(descriptor, field_name)
        if not predicate(value):
            raise ValueError(f"field {field_name!r}: {requirement} "
                             f"(got {value!r})")


@functools.lru_cache(maxsize=256)
def _digest_cached(descriptor: TechDescriptor) -> str:
    # store.keys is imported lazily: it pulls in the kernel-backend
    # resolution, which tech must not depend on at import time.
    from repro.store.keys import digest_of
    return digest_of(descriptor.to_json())


__all__ = ["TECH_SCHEMA_VERSION", "TechDescriptor", "validate_descriptor"]
