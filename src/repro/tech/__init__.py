"""Technology descriptors: the paper's constants as data, not code.

Public surface:

* :class:`~repro.tech.descriptor.TechDescriptor` — one validated,
  digestable descriptor;
* :func:`~repro.tech.registry.get_tech` / ``names`` / ``register`` —
  the built-in registry (``flash`` / ``eeprom`` / ``cnfet`` reproduce
  Table 1 bit-identically);
* :func:`~repro.tech.loader.load_descriptor` — JSON/TOML user files;
* :func:`~repro.tech.loader.resolve_tech` / ``active`` / ``use`` —
  the ``REPRO_TECH`` / ``--tech`` resolution chain every consuming
  layer and the artifact-store key derivation go through.
"""

from repro.tech.descriptor import (TECH_SCHEMA_VERSION, TechDescriptor,
                                   validate_descriptor)
from repro.tech.loader import (TECH_ENV, active, active_digest,
                               load_descriptor, resolve_tech, use)
from repro.tech.registry import (ALIASES, BUILTIN, DEFAULT_TECH, get_tech,
                                 names, register, unregister)

__all__ = [
    "ALIASES", "BUILTIN", "DEFAULT_TECH", "TECH_ENV",
    "TECH_SCHEMA_VERSION", "TechDescriptor", "active", "active_digest",
    "get_tech", "load_descriptor", "names", "register", "resolve_tech",
    "unregister", "use", "validate_descriptor",
]
