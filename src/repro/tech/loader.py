"""Loading and resolving technology descriptors.

Three resolution sources, in precedence order:

1. an explicit in-process override (``use(...)`` context manager —
   the serving layer wraps each request carrying a ``tech`` field);
2. the ``REPRO_TECH`` environment variable — a registry name or a
   path to a JSON/TOML descriptor file;
3. the built-in default (``cnfet``, the paper's assessment setup).

File loading is strict: malformed syntax, unknown fields and
out-of-range values all raise :class:`~repro.errors.ReproInputError`
with ``file:line`` context where the format parser provides one, so
the CLI prints a one-line diagnosis instead of a traceback.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Iterator, Optional, Tuple, Union

from repro.errors import ReproInputError
from repro.tech.descriptor import TechDescriptor
from repro.tech.registry import DEFAULT_TECH, get_tech, names

#: Environment variable selecting the default technology (a registry
#: name or a descriptor-file path).
TECH_ENV = "REPRO_TECH"

#: File suffixes the loader parses.
_SUFFIXES = (".json", ".toml")

#: In-process override stack (``use`` pushes/pops).
_OVERRIDE: list = []

#: (path, mtime_ns, size) -> descriptor: ``REPRO_TECH`` pointing at a
#: file is re-resolved on every cache-key derivation, so file loads
#: are memoized until the file changes.
_FILE_CACHE: dict = {}


def load_descriptor(path: Union[str, os.PathLike]) -> TechDescriptor:
    """Parse and validate one descriptor file (JSON or TOML).

    The descriptor is a flat object of :class:`TechDescriptor` fields;
    ``name`` defaults to the file's stem.  Any syntax or validation
    problem raises :class:`ReproInputError` carrying the source path
    (and the line, when the parser reports one).
    """
    path = os.fspath(path)
    suffix = os.path.splitext(path)[1].lower()
    if suffix not in _SUFFIXES:
        raise ReproInputError(
            f"unsupported descriptor format {suffix or '(none)'!r} "
            f"(expected one of: {', '.join(_SUFFIXES)})", source=path)
    try:
        stamp = os.stat(path)
    except OSError as exc:
        raise ReproInputError(f"cannot read descriptor: {exc}", source=path)
    cache_key = (path, stamp.st_mtime_ns, stamp.st_size)
    cached = _FILE_CACHE.get(cache_key)
    if cached is not None:
        return cached

    data, line = _parse_file(path, suffix)
    default_name = os.path.splitext(os.path.basename(path))[0]
    try:
        descriptor = TechDescriptor.from_json(data,
                                              default_name=default_name)
    except (TypeError, ValueError) as exc:
        raise ReproInputError(str(exc), source=path, line=line)
    _FILE_CACHE.clear()  # one live file per process is the common case
    _FILE_CACHE[cache_key] = descriptor
    return descriptor


def _parse_file(path: str, suffix: str) -> Tuple[dict, Optional[int]]:
    """(parsed dict, descriptor start line) of one file."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ReproInputError(f"cannot read descriptor: {exc}", source=path)
    if suffix == ".json":
        try:
            return json.loads(raw.decode("utf-8")), None
        except UnicodeDecodeError as exc:
            raise ReproInputError(f"not UTF-8: {exc}", source=path)
        except json.JSONDecodeError as exc:
            raise ReproInputError(f"invalid JSON: {exc.msg}", source=path,
                                  line=exc.lineno)
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        raise ReproInputError(
            "TOML descriptors need Python >= 3.11 (tomllib); "
            "use JSON instead", source=path)
    try:
        return tomllib.loads(raw.decode("utf-8")), None
    except UnicodeDecodeError as exc:
        raise ReproInputError(f"not UTF-8: {exc}", source=path)
    except tomllib.TOMLDecodeError as exc:
        # tomllib reports position inside the message ("... at line N,
        # column M"); extract the line when present
        return _raise_toml(path, exc)


def _raise_toml(path: str, exc: Exception) -> Tuple[dict, Optional[int]]:
    message = str(exc)
    line = None
    marker = "at line "
    if marker in message:
        digits = message.split(marker, 1)[1].split(",", 1)[0].strip()
        if digits.isdigit():
            line = int(digits)
    raise ReproInputError(f"invalid TOML: {message}", source=path,
                          line=line)


def _looks_like_path(spec: str) -> bool:
    return (os.sep in spec or spec.lower().endswith(_SUFFIXES)
            or os.path.exists(spec))


def resolve_tech(spec: Union[None, str, TechDescriptor] = None
                 ) -> TechDescriptor:
    """Resolve ``spec`` to a descriptor.

    ``None`` means "the session default": the innermost ``use(...)``
    override if any, else ``REPRO_TECH``, else the built-in ``cnfet``.
    A string is a registry name first, a descriptor-file path second.
    """
    if isinstance(spec, TechDescriptor):
        return spec
    if spec is None:
        if _OVERRIDE:
            return _OVERRIDE[-1]
        spec = os.environ.get(TECH_ENV, "").strip() or DEFAULT_TECH
    try:
        return get_tech(spec)
    except KeyError:
        if _looks_like_path(spec):
            return load_descriptor(spec)
        raise ReproInputError(
            f"unknown technology {spec!r} (registry names: "
            f"{', '.join(names())}; or pass a .json/.toml descriptor "
            f"path)")


def active() -> TechDescriptor:
    """The descriptor governing this process right now."""
    return resolve_tech(None)


def active_digest() -> str:
    """Content digest of :func:`active` (cache-key component)."""
    return active().digest()


@contextlib.contextmanager
def use(spec: Union[str, TechDescriptor]) -> Iterator[TechDescriptor]:
    """Scope ``spec`` as the active technology (re-entrant).

    Everything under the ``with`` — model defaults resolved at call
    time, artifact-store key derivation — sees the overridden
    technology.
    """
    descriptor = resolve_tech(spec)
    _OVERRIDE.append(descriptor)
    try:
        yield descriptor
    finally:
        _OVERRIDE.pop()


__all__ = ["TECH_ENV", "active", "active_digest", "load_descriptor",
           "resolve_tech", "use"]
