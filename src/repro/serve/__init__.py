"""Asynchronous synthesis serving: the network front end.

The serving layer stacks four pieces (DESIGN section 10):

* :mod:`repro.serve.protocol` — newline-delimited JSON over any byte
  stream (TCP, socketpair, stdio pipes);
* :mod:`repro.serve.batcher` — the adaptive micro-batcher that turns N
  concurrent ``evaluate`` requests into one batch-arena pass;
* :mod:`repro.serve.workers` — the bridge onto the warm multi-process
  pool (``repro.runner.WarmPool``: timeouts, retries, crash recovery,
  no per-call spin-up);
* :mod:`repro.serve.server` — admission control with load-shedding,
  per-endpoint latency metrics, graceful drain;

plus :mod:`repro.serve.client` (pipelined asyncio + blocking clients)
and :mod:`repro.serve.ops` (the picklable worker-side endpoints over
the coalescing ``SynthesisService``).

Entry point: ``repro serve`` (see the CLI), or programmatically::

    from repro.serve import ServeConfig, SynthesisServer

    server = SynthesisServer(ServeConfig.from_env(port=7929))
    asyncio.run(server.run_tcp())
"""

from repro.serve.batcher import BatchCollector
from repro.serve.client import (AsyncServeClient, RetryPolicy, ServeClient,
                                ServeError)
from repro.serve.server import ServeConfig, SynthesisServer
from repro.serve.workers import (CircuitBreaker, DegradedError, InlineBridge,
                                 WorkerBridge)

__all__ = ["AsyncServeClient", "BatchCollector", "CircuitBreaker",
           "DegradedError", "InlineBridge", "RetryPolicy", "ServeClient",
           "ServeConfig", "ServeError", "SynthesisServer", "WorkerBridge"]
