"""Worker-side endpoint implementations (picklable, JSON in/out).

Each ``op_*`` function takes the request's ``params`` dict and returns
the response's ``result`` dict.  They run inside the warm worker pool
(:class:`repro.runner.WarmPool`), so they are top-level and picklable,
take and return only JSON-shaped data (covers travel as
:mod:`repro.store.codecs` encodings), and go through
:func:`repro.store.service.get_service` — workers share the disk tier
of the content-addressed store with each other and with offline
drivers, so a result synthesized for one client warms every later one.

Byte-identity contract: every op produces exactly what the equivalent
direct ``SynthesisService`` call encodes to.  The serve tests and the
``bench_serve`` load generator compare the two canonical-JSON renders
byte for byte on both kernel backends.

:exc:`RequestError` marks *caller* mistakes (undecodable cover, bad
dimensions) — the bridge maps it to a ``bad_request`` protocol error
instead of ``internal``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.store import codecs


class RequestError(ValueError):
    """Client-side parameter error (becomes a ``bad_request`` reply)."""


def _require(params: Dict[str, Any], field: str, kind: type) -> Any:
    value = params.get(field)
    if not isinstance(value, kind):
        raise RequestError(f"param {field!r} must be "
                           f"{kind.__name__}, got "
                           f"{type(value).__name__}")
    return value


def _decode_cover(payload: Any, where: str):
    if not isinstance(payload, dict):
        raise RequestError(f"{where}: cover encoding must be an object")
    try:
        return codecs.decode_cover(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestError(f"{where}: undecodable cover ({exc!r})")


def _minterm_list(params: Dict[str, Any], field: str = "minterms"
                  ) -> List[int]:
    raw = _require(params, field, list)
    if not raw:
        raise RequestError(f"param {field!r} must be non-empty")
    try:
        return [int(m) for m in raw]
    except (TypeError, ValueError):
        raise RequestError(f"param {field!r} must be a list of ints")


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
def op_minimize(params: Dict[str, Any]) -> Dict[str, Any]:
    """Espresso minimization: ``{cover, dc?, phase?}`` -> ``{cover[, phases]}``."""
    from repro.logic.function import BooleanFunction
    from repro.store.service import get_service

    on_set = _decode_cover(params.get("cover"), "cover")
    dc_payload = params.get("dc")
    dc_set = _decode_cover(dc_payload, "dc") if dc_payload is not None \
        else None
    phase = bool(params.get("phase", False))
    try:
        function = BooleanFunction(on_set, dc_set=dc_set)
    except ValueError as exc:
        raise RequestError(str(exc))
    if phase:
        cover, phases = get_service().minimize(function, {"phase": True})
        return {"cover": codecs.encode_cover(cover),
                "phases": [bool(p) for p in phases]}
    cover = get_service().minimize(function)
    return {"cover": codecs.encode_cover(cover)}


def op_evaluate_flush(params: Dict[str, Any]) -> Dict[str, Any]:
    """One micro-batch flush: unique covers x unique vectors, one pass.

    ``{covers: [enc...], minterms: [ints]}`` -> ``{masks: [[int]]}``
    where ``masks[c][t]`` is cover ``c`` on vector ``t``.  The batcher
    deduplicated both axes; this evaluates the whole cross product in
    one :func:`repro.eval.evaluate_covers` arena pass — the single
    vectorized kernel call N concurrent clients share.  No store
    round-trip: batch composition is timing-dependent, so caching the
    composite would pollute the store with never-again keys.
    """
    from repro import eval as batch_eval

    covers_raw = _require(params, "covers", list)
    decoded = []
    errors: Dict[str, str] = {}
    for i, payload in enumerate(covers_raw):
        try:
            decoded.append((i, _decode_cover(payload, f"covers[{i}]")))
        except RequestError as exc:
            # isolate the bad member: its sibling requests in the same
            # flush still get their masks
            errors[str(i)] = str(exc)
    minterms = _minterm_list(params)
    rows = batch_eval.evaluate_covers([c for _i, c in decoded], minterms)
    masks: List[Any] = [None] * len(covers_raw)
    for (i, _cover), row in zip(decoded, rows):
        masks[i] = [int(m) for m in row]
    return {"masks": masks, "errors": errors}


def op_evaluate_batch(params: Dict[str, Any]) -> Dict[str, Any]:
    """Explicit batched evaluation, served through the artifact store.

    ``{covers: [enc...], minterms: [...] | stream: {...}}`` ->
    ``{masks: [[int]]}``; exactly the payload
    ``SynthesisService.evaluate_batch`` computes and caches (stream
    specs stay compact keys, per DESIGN section 9).
    """
    from repro.store.service import get_service

    covers_raw = _require(params, "covers", list)
    covers = [_decode_cover(c, f"covers[{i}]")
              for i, c in enumerate(covers_raw)]
    stream = params.get("stream")
    minterms = None
    if stream is not None:
        if not isinstance(stream, dict):
            raise RequestError("param 'stream' must be an object")
        if "minterms" in params:
            raise RequestError("pass exactly one of minterms/stream")
    else:
        minterms = _minterm_list(params)
    try:
        masks = get_service().evaluate_batch(covers, minterms=minterms,
                                             stream=stream)
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestError(f"evaluate_batch: {exc!r}")
    return {"masks": [[int(m) for m in row] for row in masks]}


#: Table 2 emulation constants shared by the ``place_route`` endpoint
#: and :func:`repro.fpga.emulate.run_emulation` (keep in sync).
PLACE_ROUTE_DEFAULTS = {"clb_inputs": 9, "clb_outputs": 4,
                        "clb_products": 20, "channel_capacity": 28,
                        "clb_area_factor": 0.5, "target_occupancy": 0.99}


def _place_route_problem(params: Dict[str, Any]):
    """(netlist, fabric, seed) of a ``place_route`` request."""
    from repro.fpga import emulate
    from repro.store.service import get_service

    seed = int(params.get("seed", 2))
    grid = int(params.get("grid", 6))
    fabric_kind = params.get("fabric", "standard")
    if fabric_kind not in ("standard", "cnfet"):
        raise RequestError("param 'fabric' must be 'standard' or 'cnfet'")
    if not (2 <= grid <= 64):
        raise RequestError("param 'grid' must be in 2..64")
    cfg = PLACE_ROUTE_DEFAULTS
    partitioner = emulate.Partitioner(cfg["clb_inputs"], cfg["clb_outputs"],
                                      cfg["clb_products"])
    n_blocks = int(round(grid * grid * cfg["target_occupancy"]))
    partitions = get_service().get_or_compute(
        "table2_workload",
        {"seed": seed, "n_blocks": n_blocks,
         "partitioner": {"max_inputs": partitioner.max_inputs,
                         "max_outputs": partitioner.max_outputs,
                         "max_products": partitioner.max_products}},
        lambda: emulate.generate_workload(seed, n_blocks, partitioner),
        encode=codecs.encode_partitions, decode=codecs.decode_partitions)
    std_clb = emulate.standard_pla_clb(cfg["clb_inputs"], cfg["clb_outputs"],
                                       cfg["clb_products"])
    std_fabric = emulate.FPGAFabric(grid, grid, std_clb,
                                    cfg["channel_capacity"])
    if fabric_kind == "cnfet":
        amb_clb = emulate.ambipolar_pla_clb(
            cfg["clb_inputs"], cfg["clb_outputs"], cfg["clb_products"],
            area_factor=cfg["clb_area_factor"])
        fabric = emulate.FPGAFabric.same_die(std_fabric, amb_clb,
                                             cfg["channel_capacity"])
    else:
        fabric = std_fabric
    netlist = emulate.build_netlist(
        partitions, dual_polarity=fabric.clb.dual_polarity_inputs)
    return netlist, fabric, seed


def op_place_route(params: Dict[str, Any]) -> Dict[str, Any]:
    """Table 2-style place & route: ``{seed, grid, fabric}`` -> encoding.

    Regenerates the deterministic emulation workload for ``(seed,
    grid)`` (cached as ``table2_workload``), implements it on the
    requested fabric through ``SynthesisService.place_route`` (cached
    as ``place_route``), and returns the full placement/routing
    encoding plus a summary — the same artifact an offline ``repro
    table2`` run would have warmed.
    """
    from repro.store.service import get_service

    netlist, fabric, seed = _place_route_problem(params)
    placement, routing = get_service().place_route(netlist, fabric, seed)
    encoded = codecs.encode_place_route(placement, routing)
    return {"place_route": encoded,
            "summary": {"blocks": netlist.n_blocks(),
                        "nets": len(encoded["routing"]["routed"]),
                        "wirelength": routing.total_wirelength,
                        "overflow": len(routing.overflow)}}


def op_yield_run(params: Dict[str, Any]) -> Dict[str, Any]:
    """Monte Carlo yield: YieldSettings fields -> encoded YieldReport."""
    from repro.robustness.yield_engine import YieldSettings, estimate_yield

    settings_raw = _require(params, "settings", dict)
    try:
        settings = YieldSettings(**settings_raw)
    except TypeError as exc:
        raise RequestError(f"bad yield settings: {exc}")
    if settings.samples < 1 or settings.samples > 1_000_000:
        raise RequestError("param 'samples' must be in 1..1000000")
    try:
        # estimate_yield already routes through the coalescing service
        # (service.yield_run) — wrapping it again would deadlock on the
        # same cache key.
        report = estimate_yield(settings)
    except (KeyError, ValueError) as exc:
        raise RequestError(f"yield_run: {exc!r}")
    return {"report": codecs.encode_yield_report(report)}


def op_workload(params: Dict[str, Any]) -> Dict[str, Any]:
    """Workload registry access: build, evaluate, or curve one cell.

    ``{spec, action?}`` where ``action`` is one of:

    * ``"build"`` (default) — compile the cell and return its raw and
      minimized cover encodings plus the model digest;
    * ``"eval"`` — additionally check the compiled cover against the
      workload's oracle on an LFSR stream (``words``/``seed`` params)
      and report the mismatch count;
    * ``"curve"`` — run the accuracy/defect curve driver
      (:func:`repro.workloads.curves.run_curve`) with
      :class:`~repro.workloads.curves.CurveSettings` overrides passed
      under ``curve``; returns the store-served report.
    """
    from repro import workloads
    from repro.errors import ReproInputError

    spec = _require(params, "spec", str)
    action = params.get("action", "build")
    if action not in ("build", "eval", "curve"):
        raise RequestError("param 'action' must be build/eval/curve")
    try:
        if action == "curve":
            from repro.workloads.curves import CurveSettings, run_curve
            overrides = params.get("curve", {})
            if not isinstance(overrides, dict):
                raise RequestError("param 'curve' must be an object")
            for key in ("techs", "rates"):
                if key in overrides:
                    overrides[key] = tuple(overrides[key])
            settings = CurveSettings(spec=spec, **overrides)
            return {"report": run_curve(settings)}
        raw = workloads.raw_function(spec)
        compiled = workloads.workload_function(spec)
    except RequestError:
        raise
    except (ReproInputError, ValueError) as exc:
        raise RequestError(str(exc))
    except TypeError as exc:
        raise RequestError(f"bad curve settings: {exc}")
    result = {
        "spec": workloads.strip_prefix(spec),
        "model_digest": workloads.model_digest(spec),
        "function": {"name": compiled.name, "inputs": compiled.n_inputs,
                     "outputs": compiled.n_outputs,
                     "raw_products": raw.on_set.n_cubes(),
                     "products": compiled.on_set.n_cubes()},
        "cover": codecs.encode_cover(compiled.on_set),
    }
    if action == "eval":
        from repro.store.service import get_service
        from repro.testgen.lfsr import stream_spec

        words = int(params.get("words", 64))
        if not 1 <= words <= 1 << 16:
            raise RequestError("param 'words' must be in 1..65536")
        stream = stream_spec(max(2, compiled.n_inputs), words,
                             seed=int(params.get("seed", 0)))
        masks = get_service().evaluate_batch([compiled.on_set],
                                             stream=stream)[0]
        from repro.testgen.lfsr import stream_minterms
        mismatches = sum(
            1 for minterm, mask in zip(stream_minterms(stream), masks)
            if mask != workloads.oracle_mask(spec, minterm))
        result["eval"] = {"stream": stream, "vectors": words * 64,
                          "mismatches": mismatches}
    return result


#: Endpoint registry: everything the worker bridge can dispatch.
OPS = {
    "minimize": op_minimize,
    "evaluate_flush": op_evaluate_flush,
    "evaluate_batch": op_evaluate_batch,
    "place_route": op_place_route,
    "yield_run": op_yield_run,
    "workload": op_workload,
}


def dispatch(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one endpoint (top-level, picklable).

    Every op accepts an optional ``tech`` param (registry name or
    descriptor-file path): the handler runs under
    :func:`repro.tech.use`, so model constants *and* artifact keys
    resolve for that technology.  Unknown specs are ``bad_request``.
    """
    handler = OPS.get(op)
    if handler is None:
        raise RequestError(f"no worker op {op!r}")
    tech_spec = params.get("tech")
    if tech_spec is None:
        return handler(params)
    if not isinstance(tech_spec, str):
        raise RequestError("param 'tech' must be a string (registry name "
                           "or descriptor path)")
    from repro import tech as tech_mod
    from repro.errors import ReproInputError
    params = {k: v for k, v in params.items() if k != "tech"}
    try:
        with tech_mod.use(tech_spec):
            return handler(params)
    except ReproInputError as exc:
        raise RequestError(str(exc))


def dispatch_checked(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """:func:`dispatch` wrapped in a result-integrity envelope.

    Returns ``{"result": ..., "digest": sha256(canonical(result))}``.
    The digest is computed *before* the ``worker.result`` failpoint
    gets a chance to poison the result in transit, so the bridge can
    detect a silently-corrupted reply and retry instead of serving
    wrong bytes.  Only used when faults are armed (or
    ``REPRO_SERVE_VERIFY=1``) — the envelope costs one canonical
    serialization per request.
    """
    from repro import faults
    from repro.store.keys import digest_of

    result = dispatch(op, params)
    digest = digest_of(result)
    rule = faults.check("worker.result")
    if rule is not None:  # "poison": corrupt after the digest is taken
        result = {"poisoned": True, "op": op}
    return {"result": result, "digest": digest}


__all__ = ["OPS", "PLACE_ROUTE_DEFAULTS", "RequestError", "dispatch",
           "dispatch_checked", "op_evaluate_batch", "op_evaluate_flush",
           "op_minimize", "op_place_route", "op_workload", "op_yield_run"]
