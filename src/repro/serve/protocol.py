"""Newline-delimited JSON wire protocol for the synthesis server.

One request per line, one response per line, over any byte stream (TCP
socket, socketpair, stdio pipes — the transports are interchangeable,
which is what lets the tests drive the full server over a pipe):

Request::

    {"id": <any JSON value>, "op": "<endpoint>", "params": {...}}\\n

Response::

    {"id": <echoed>, "ok": true,  "result": {...}}\\n
    {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}}\\n

``id`` is caller-chosen and echoed verbatim; responses to pipelined
requests may arrive out of order, so clients match on it.  Unparsable
lines get ``id: null`` error replies.  Error codes:

=================  ====================================================
``bad_request``    malformed JSON, missing/ill-typed fields, or
                   endpoint-specific parameter errors
``unknown_op``     ``op`` names no endpoint
``overloaded``     the admission queue is full — the 429-style
                   load-shed reply; retry after backoff
``degraded``       the worker-bridge circuit breaker is open (worker
                   pool repeatedly crashing/wedging); fail-fast reply,
                   retry after backoff like ``overloaded``
``shutting_down``  the server is draining; no new work is admitted
``internal``       the computation raised; ``message`` carries the
                   ``repr`` of the exception
=================  ====================================================

Payload canonicalization matters more than usual here: the acceptance
gate compares served results byte-for-byte against direct
``SynthesisService`` calls, so every response body is rendered with
:func:`dumps` (sorted keys, compact separators, ASCII) — two equal
results are equal *bytes*.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Tuple

#: Hard cap on one protocol line (requests carry whole covers; 32 MiB
#: bounds a hostile or confused client without constraining real use).
MAX_LINE_BYTES = 32 * 1024 * 1024

ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_OVERLOADED = "overloaded"
ERR_DEGRADED = "degraded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A malformed request line (reported, never fatal to the server)."""

    def __init__(self, code: str, message: str,
                 request_id: Any = None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id


def dumps(document: Any) -> str:
    """Canonical one-line JSON (sorted keys, compact, ASCII)."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def encode_request(request_id: Any, op: str,
                   params: Optional[dict] = None) -> bytes:
    """One request line, newline-terminated."""
    return (dumps({"id": request_id, "op": op,
                   "params": params or {}}) + "\n").encode("utf-8")


def encode_response(request_id: Any, result: Any) -> bytes:
    """One success line, newline-terminated."""
    return (dumps({"id": request_id, "ok": True,
                   "result": result}) + "\n").encode("utf-8")


def encode_error(request_id: Any, code: str, message: str) -> bytes:
    """One error line, newline-terminated."""
    return (dumps({"id": request_id, "ok": False,
                   "error": {"code": code,
                             "message": message}}) + "\n").encode("utf-8")


def parse_request(line: bytes) -> Tuple[Any, str, dict]:
    """``(id, op, params)`` of one request line.

    Raises :class:`ProtocolError` (code ``bad_request``) on malformed
    input; the id is recovered when possible so the error reply can
    still be correlated.
    """
    try:
        document = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST, f"unparsable request: {exc}")
    if not isinstance(document, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "request is not an object")
    request_id = document.get("id")
    op = document.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(ERR_BAD_REQUEST, "missing or non-string 'op'",
                            request_id=request_id)
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "'params' is not an object",
                            request_id=request_id)
    return request_id, op, params


def parse_response(line: bytes) -> dict:
    """One response line as a dict (clients; raises ``ValueError``)."""
    document = json.loads(line)
    if not isinstance(document, dict) or "ok" not in document:
        raise ValueError("malformed response line")
    return document


__all__ = ["ERR_BAD_REQUEST", "ERR_DEGRADED", "ERR_INTERNAL",
           "ERR_OVERLOADED", "ERR_SHUTTING_DOWN", "ERR_UNKNOWN_OP",
           "MAX_LINE_BYTES",
           "ProtocolError", "dumps", "encode_error", "encode_request",
           "encode_response", "parse_request", "parse_response"]
