"""Bridge from the asyncio event loop to the warm worker pool.

The event loop must never run synthesis: a single Espresso pass would
stall every connection.  :class:`WorkerBridge` submits endpoint work to
the shared :class:`repro.runner.WarmPool` (live processes reused across
requests — no per-call executor spin-up) and exposes it as an
awaitable, keeping the resilient runner's semantics:

* **crash isolation** — a ``BrokenProcessPool`` (worker segfault,
  ``kill -9``) recycles the pool and retries the request up to
  ``retries`` times; other requests only ever see their own error;
* **timeouts** — a request over its wall budget (``REPRO_TASK_TIMEOUT``
  by default) recycles the pool (a wedged worker cannot be interrupted
  politely) and is retried, then reported as ``internal``;
* **caller-error passthrough** — :exc:`repro.serve.ops.RequestError`
  raised in the worker is not retried (the request itself is wrong).

Tests substitute any object with the same ``async run(op, params)``
coroutine (e.g. a gated in-process executor) to make admission-queue
and drain behaviour deterministic.
"""

from __future__ import annotations

import asyncio
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional

from repro import perf, runner
from repro.serve.ops import RequestError, dispatch


class WorkerBridge:
    """Awaitable endpoint execution on a warm multi-process pool."""

    def __init__(self, pool: Optional[runner.WarmPool] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2, backoff: float = 0.1) -> None:
        self.pool = pool if pool is not None else runner.shared_pool(jobs)
        self.timeout = timeout if timeout is not None \
            else runner.default_timeout()
        self.retries = retries
        self.backoff = backoff

    async def run(self, op: str, params: Dict[str, Any]) -> Any:
        """Execute ``ops.dispatch(op, params)`` in a worker, resiliently."""
        attempt = 0
        while True:
            attempt += 1
            future = self.pool.submit(dispatch, op, params)
            try:
                return await asyncio.wait_for(asyncio.wrap_future(future),
                                              timeout=self.timeout)
            except RequestError:
                raise  # the caller's fault; retrying cannot help
            except (BrokenProcessPool, asyncio.TimeoutError) as exc:
                future.cancel()
                self.pool.recycle()
                perf.count("serve.worker.recycles")
                if attempt > self.retries:
                    if isinstance(exc, asyncio.TimeoutError):
                        raise TimeoutError(
                            f"op {op!r} timed out after "
                            f"{self.timeout:.1f}s "
                            f"({attempt} attempt(s))") from exc
                    raise
                perf.count("serve.worker.retries")
                if self.backoff:
                    await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))

    def shutdown(self) -> None:
        """Stop the workers (only if this bridge owns a private pool)."""
        self.pool.shutdown()


class InlineBridge:
    """Same interface, computed on the event-loop thread (tests only)."""

    async def run(self, op: str, params: Dict[str, Any]) -> Any:
        return dispatch(op, params)

    def shutdown(self) -> None:  # pragma: no cover - nothing to stop
        pass


__all__ = ["InlineBridge", "WorkerBridge"]
