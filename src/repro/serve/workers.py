"""Bridge from the asyncio event loop to the warm worker pool.

The event loop must never run synthesis: a single Espresso pass would
stall every connection.  :class:`WorkerBridge` submits endpoint work to
the shared :class:`repro.runner.WarmPool` (live processes reused across
requests — no per-call executor spin-up) and exposes it as an
awaitable, keeping the resilient runner's semantics:

* **crash isolation** — a ``BrokenProcessPool`` (worker segfault,
  ``kill -9``) recycles the pool and retries the request up to
  ``retries`` times; other requests only ever see their own error.
  Recycles are deduplicated by pool generation: one crash breaks every
  in-flight future, and only the first observer actually replaces the
  pool;
* **timeouts** — a request over its wall budget (``REPRO_TASK_TIMEOUT``
  by default) recycles the pool (a wedged worker cannot be interrupted
  politely) and is retried, then reported as ``internal``;
* **circuit breaker** — ``REPRO_SERVE_BREAKER`` consecutive pool
  recycles trip the breaker: requests fail fast with
  :class:`DegradedError` (protocol code ``degraded``) instead of
  burning a worker spin-up per doomed attempt.  After
  ``REPRO_SERVE_BREAKER_COOLDOWN`` seconds the breaker half-opens and
  lets one probe request through; its success closes the breaker, its
  failure re-opens it;
* **result integrity** — when :mod:`repro.faults` is armed (or
  ``REPRO_SERVE_VERIFY=1``), work runs through
  :func:`repro.serve.ops.dispatch_checked` and the reply's digest is
  re-verified on the loop side, so a poisoned worker result is retried
  instead of served;
* **caller-error passthrough** — :exc:`repro.serve.ops.RequestError`
  raised in the worker is not retried (the request itself is wrong).

Tests substitute any object with the same ``async run(op, params)``
coroutine (e.g. a gated in-process executor) to make admission-queue
and drain behaviour deterministic.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional

from repro import perf, runner
from repro.serve.ops import RequestError, dispatch, dispatch_checked

#: Consecutive pool recycles before the breaker trips (0 disables).
BREAKER_ENV = "REPRO_SERVE_BREAKER"
#: Seconds an open breaker waits before letting a probe through.
BREAKER_COOLDOWN_ENV = "REPRO_SERVE_BREAKER_COOLDOWN"
#: Force the result-integrity envelope even with no faults armed.
VERIFY_ENV = "REPRO_SERVE_VERIFY"

DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_COOLDOWN = 2.0


class DegradedError(RuntimeError):
    """Fail-fast reply while the worker pool is known-unhealthy."""


def default_breaker_threshold() -> int:
    raw = os.environ.get(BREAKER_ENV, "").strip()
    if not raw:
        return DEFAULT_BREAKER_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(f"{BREAKER_ENV}={raw!r} is not an integer")


def default_breaker_cooldown() -> float:
    raw = os.environ.get(BREAKER_COOLDOWN_ENV, "").strip()
    if not raw:
        return DEFAULT_BREAKER_COOLDOWN
    try:
        return max(0.0, float(raw))
    except ValueError:
        raise ValueError(f"{BREAKER_COOLDOWN_ENV}={raw!r} is not a number")


def _verify_enabled() -> bool:
    from repro import faults
    if os.environ.get(VERIFY_ENV, "").strip().lower() in ("1", "on", "yes",
                                                          "true"):
        return True
    return faults.active()


class CircuitBreaker:
    """Closed → open → half-open worker-health state machine.

    *Failures* are actual pool recycles (crash or wedge); a request
    that merely rides out a sibling's recycle does not count.  After
    ``threshold`` consecutive failures the breaker opens:
    :meth:`allow` answers False (callers fail fast with ``degraded``)
    until ``cooldown`` seconds pass, then exactly one probe request is
    let through.  The probe's success closes the breaker; its failure
    re-opens it for another cooldown.

    Counters: ``breaker.trips`` / ``breaker.fast_fails`` /
    ``breaker.probes`` / ``breaker.closes``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: Optional[int] = None,
                 cooldown: Optional[float] = None,
                 clock=time.monotonic) -> None:
        self.threshold = threshold if threshold is not None \
            else default_breaker_threshold()
        self.cooldown = cooldown if cooldown is not None \
            else default_breaker_cooldown()
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._clock = clock

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def allow(self) -> bool:
        """May a request proceed right now?  (Counts fast-fails.)"""
        if not self.enabled or self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self._probing = True
                perf.count("breaker.probes")
                return True
            perf.count("breaker.fast_fails")
            return False
        # half-open: exactly one probe in flight
        if self._probing:
            perf.count("breaker.fast_fails")
            return False
        self._probing = True
        perf.count("breaker.probes")
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probing = False
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            perf.count("breaker.closes")

    def record_failure(self) -> None:
        """One actual pool recycle (not a deduplicated sibling)."""
        if not self.enabled:
            return
        self.failures += 1
        self._probing = False
        if self.state == self.HALF_OPEN or self.failures >= self.threshold:
            if self.state != self.OPEN:
                perf.count("breaker.trips")
            self.state = self.OPEN
            self._opened_at = self._clock()

    def snapshot(self) -> Dict[str, Any]:
        return {"state": self.state, "failures": self.failures,
                "threshold": self.threshold, "cooldown": self.cooldown}


class WorkerBridge:
    """Awaitable endpoint execution on a warm multi-process pool."""

    def __init__(self, pool: Optional[runner.WarmPool] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2, backoff: float = 0.1,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.pool = pool if pool is not None else runner.shared_pool(jobs)
        self.timeout = timeout if timeout is not None \
            else runner.default_timeout()
        self.retries = retries
        self.backoff = backoff
        self.breaker = breaker if breaker is not None else CircuitBreaker()

    async def run(self, op: str, params: Dict[str, Any]) -> Any:
        """Execute ``ops.dispatch(op, params)`` in a worker, resiliently."""
        if not self.breaker.allow():
            raise DegradedError(
                f"worker pool degraded ({self.breaker.failures} consecutive "
                f"recycles); retry after "
                f"{self.breaker.cooldown:.1f}s")
        checked = _verify_enabled()
        entry = dispatch_checked if checked else dispatch
        attempt = 0
        while True:
            attempt += 1
            generation = self.pool.generation
            future = self.pool.submit(entry, op, params)
            try:
                reply = await asyncio.wait_for(asyncio.wrap_future(future),
                                               timeout=self.timeout)
                if checked:
                    reply = self._unseal(op, reply)
                self.breaker.record_success()
                return reply
            except RequestError:
                # the caller's fault; the pool is fine and retrying
                # cannot help
                self.breaker.record_success()
                raise
            except _PoisonedResult as exc:
                perf.count("serve.worker.poisoned")
                if attempt > self.retries:
                    raise RuntimeError(str(exc)) from None
                perf.count("serve.worker.retries")
            except (BrokenProcessPool, asyncio.TimeoutError) as exc:
                future.cancel()
                if self.pool.recycle(seen=generation):
                    # this failure actually replaced the pool; sibling
                    # requests broken by the same crash dedupe to a ride
                    perf.count("serve.worker.recycles")
                    self.breaker.record_failure()
                if attempt > self.retries:
                    if isinstance(exc, asyncio.TimeoutError):
                        raise TimeoutError(
                            f"op {op!r} timed out after "
                            f"{self.timeout:.1f}s "
                            f"({attempt} attempt(s))") from exc
                    raise
                perf.count("serve.worker.retries")
                if self.backoff:
                    await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))

    @staticmethod
    def _unseal(op: str, envelope: Any) -> Any:
        """Verify a :func:`dispatch_checked` envelope; raise on poison."""
        from repro.store.keys import digest_of
        if (not isinstance(envelope, dict) or "result" not in envelope
                or "digest" not in envelope):
            raise _PoisonedResult(f"op {op!r}: malformed worker envelope")
        result = envelope["result"]
        if digest_of(result) != envelope["digest"]:
            raise _PoisonedResult(
                f"op {op!r}: worker result failed digest verification "
                f"(poisoned/corrupt reply)")
        return result

    def shutdown(self) -> None:
        """Stop the workers (only if this bridge owns a private pool)."""
        self.pool.shutdown()


class _PoisonedResult(RuntimeError):
    """A worker reply whose digest does not match its payload."""


class InlineBridge:
    """Same interface, computed on the event-loop thread (tests only)."""

    async def run(self, op: str, params: Dict[str, Any]) -> Any:
        return dispatch(op, params)

    def shutdown(self) -> None:  # pragma: no cover - nothing to stop
        pass


__all__ = ["BREAKER_COOLDOWN_ENV", "BREAKER_ENV", "CircuitBreaker",
           "DEFAULT_BREAKER_COOLDOWN", "DEFAULT_BREAKER_THRESHOLD",
           "DegradedError", "InlineBridge", "VERIFY_ENV", "WorkerBridge",
           "default_breaker_cooldown", "default_breaker_threshold"]
