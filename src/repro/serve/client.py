"""Clients for the newline-delimited JSON synthesis protocol.

Two flavours over the same wire format:

* :class:`AsyncServeClient` — asyncio, **pipelining**: many coroutines
  share one connection, requests are tagged with monotonically
  increasing ids and responses are matched back as they arrive (the
  server may reorder).  This is what the load generator and the
  concurrent-client tests use; it is also how the micro-batcher is fed
  enough simultaneous requests to batch.
* :class:`ServeClient` — blocking sockets, strictly request/response.
  Convenient for scripts and debugging (``repro serve`` + a five-line
  client).

Both raise :class:`ServeError` for protocol-level error replies; the
error's ``code`` distinguishes load-shedding (``overloaded``) from
caller bugs (``bad_request``) so clients can implement retry policies.

**Resilience.**  Both clients carry a :class:`RetryPolicy`: capped
exponential backoff with *full jitter* on ``overloaded``/``degraded``
replies and on connection resets/EOF, plus connect and per-request
read deadlines so a dead or wedged server can never hang a caller.
Replays are **idempotent by construction**: a retried request keeps
its original request id, and every server reply is canonical JSON
derived content-addressably from the request — a replayed request
yields byte-identical results, so retrying after an ambiguous failure
(reset mid-reply) cannot produce wrong answers, only repeated work.
``shutting_down``/``bad_request``/``internal`` replies are never
retried.  On the blocking client a deadline expiry surfaces as
:class:`repro.errors.ReproInputError` (the CLI's clean exit), not an
indefinite hang.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import perf
from repro.errors import ReproInputError
from repro.serve import protocol

#: Error codes worth retrying: transient server states that a backoff
#: is expected to clear.  Everything else is final.
RETRYABLE_CODES = frozenset({protocol.ERR_OVERLOADED,
                             protocol.ERR_DEGRADED})


class ServeError(RuntimeError):
    """An error reply from the server (carries the protocol code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


@dataclass
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``delay(attempt)`` draws uniformly from ``[0, min(cap, base *
    2**attempt)]`` — full jitter decorrelates a thundering herd of
    clients all shed by the same ``overloaded`` burst.  ``seed`` makes
    the jitter sequence reproducible (the chaos harness pins it).

    ``deadline`` is the per-request read budget in seconds (``None``
    disables); ``connect_timeout`` bounds (re)connection attempts.
    """

    retries: int = 4
    base: float = 0.05
    cap: float = 2.0
    deadline: Optional[float] = 30.0
    connect_timeout: float = 10.0
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        """Jittered sleep before retry ``attempt`` (1-based)."""
        ceiling = min(self.cap, self.base * (2 ** max(0, attempt - 1)))
        return self._rng.uniform(0.0, ceiling)

    @staticmethod
    def retryable_error(exc: BaseException) -> bool:
        """Is this failure transient (retry) or final (raise)?"""
        if isinstance(exc, ServeError):
            return exc.code in RETRYABLE_CODES
        return isinstance(exc, (ConnectionResetError, BrokenPipeError,
                                ConnectionAbortedError, EOFError,
                                asyncio.IncompleteReadError))


_CONNECTION_ERRORS = (ConnectionResetError, BrokenPipeError,
                      ConnectionAbortedError, ConnectionError, EOFError,
                      OSError)


def _unwrap(document: dict) -> Any:
    if document.get("ok"):
        return document.get("result")
    error = document.get("error") or {}
    raise ServeError(error.get("code", "internal"),
                     error.get("message", "unknown server error"))


class AsyncServeClient:
    """One pipelined connection; safe for concurrent ``request`` calls.

    A client built with :meth:`connect` owns its connection and will
    transparently reconnect and replay after a reset (same request id,
    content-addressed replies — see the module docstring); a client
    :meth:`attach`-ed to an existing stream pair cannot reconnect, so
    connection failures surface to the caller after in-place retries.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._address: Optional[Tuple[str, int]] = None
        self._connect_lock = asyncio.Lock()

    async def connect(self, host: str, port: int) -> "AsyncServeClient":
        self._address = (host, port)
        await self._open_connection()
        return self

    async def _open_connection(self) -> None:
        host, port = self._address
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port,
                                    limit=protocol.MAX_LINE_BYTES),
            timeout=self.retry.connect_timeout)
        self.attach(reader, writer)

    def attach(self, reader: asyncio.StreamReader,
               writer: asyncio.StreamWriter) -> "AsyncServeClient":
        """Adopt an existing stream pair (pipe/socketpair transports)."""
        self._reader = reader
        self._writer = writer
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionResetError("connection closed")
        reader = self._reader
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # torn final line (reset mid-reply): not a valid
                    # response, fail pending requests as a reset
                    break
                try:
                    document = protocol.parse_response(line)
                except ValueError:
                    continue  # not ours to crash on; skip the line
                future = self._pending.pop(document.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(document)
        except (ConnectionResetError, BrokenPipeError, ValueError,
                OSError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionResetError(repr(error))
                        if not isinstance(error, ConnectionResetError)
                        else error)
            self._pending.clear()

    async def _reconnect(self) -> bool:
        """Re-establish a :meth:`connect`-owned connection; False when
        this client cannot (attach mode)."""
        if self._address is None:
            return False
        async with self._connect_lock:
            # a live writer alone is not proof of health: after a
            # server-side abort the writer does not learn it is dead
            # until the next write, but the read loop does — require
            # both before declaring someone else already reconnected
            if (self._writer is not None and not self._writer.is_closing()
                    and self._reader_task is not None
                    and not self._reader_task.done()):
                return True
            await self._teardown()
            await self._open_connection()
            perf.count("retries.reconnects")
            return True

    async def _teardown(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None

    async def request(self, op: str, params: Optional[dict] = None,
                      deadline: Optional[float] = None) -> Any:
        """Send one request; resolves to its ``result`` (or raises).

        ``deadline`` overrides the policy's per-request read budget.
        Transient failures (``overloaded``/``degraded`` replies,
        connection resets, deadline expiry on a reconnectable client)
        are retried with jittered backoff under the *same* request id.
        """
        if self._writer is None:
            raise RuntimeError("client is not connected")
        if deadline is None:
            deadline = self.retry.deadline
        self._next_id += 1
        request_id = self._next_id
        attempt = 0
        while True:
            attempt += 1
            try:
                return await self._attempt(request_id, op, params, deadline)
            except BaseException as exc:  # noqa: BLE001 - classified below
                if isinstance(exc, asyncio.CancelledError):
                    raise
                timed_out = isinstance(exc, asyncio.TimeoutError)
                if timed_out and self._address is None:
                    raise TimeoutError(
                        f"request {op!r} exceeded its "
                        f"{deadline:.1f}s deadline") from exc
                retryable = (self.retry.retryable_error(exc)
                             or isinstance(exc, ConnectionError)
                             or timed_out)
                if not retryable or attempt > self.retry.retries:
                    if timed_out:
                        raise TimeoutError(
                            f"request {op!r} exceeded its "
                            f"{deadline:.1f}s deadline "
                            f"({attempt} attempt(s))") from exc
                    raise
                perf.count("retries.requests")
                if isinstance(exc, ServeError):
                    perf.count(f"retries.{exc.code}")
                else:
                    perf.count("retries.connection")
                await asyncio.sleep(self.retry.delay(attempt))
                if not isinstance(exc, ServeError):
                    # connection-level failure (reset / EOF / deadline):
                    # the stream state is unknown; replay needs a fresh
                    # connection when this client owns one
                    if not await self._reconnect():
                        raise

    async def _attempt(self, request_id: int, op: str,
                       params: Optional[dict],
                       deadline: Optional[float]) -> Any:
        if (self._writer is None or self._writer.is_closing()
                or (self._reader_task is not None
                    and self._reader_task.done())):
            # dead stream: fail fast (and reconnect, when possible)
            # instead of writing into the void and waiting out the
            # deadline
            raise ConnectionResetError("connection is closed")
        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            # write() buffers synchronously; draining per request would
            # cost two event-loop hops on every call, so only apply
            # flow control once the transport's buffer actually backs up
            self._writer.write(protocol.encode_request(request_id, op,
                                                       params))
            if self._writer.transport.get_write_buffer_size() > 65536:
                async with self._write_lock:
                    await self._writer.drain()
            if deadline is not None:
                document = await asyncio.wait_for(future, timeout=deadline)
            else:
                document = await future
        finally:
            pending = self._pending.pop(request_id, None)
            if pending is not None and not pending.done():
                pending.cancel()
        return _unwrap(document)

    async def close(self) -> None:
        await self._teardown()

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()


class ServeClient:
    """Blocking request/response client (scripts, debugging).

    ``timeout`` is both the connect deadline and the per-reply read
    deadline; expiry raises :class:`repro.errors.ReproInputError`
    (clean CLI exit) instead of hanging on a dead server.  Transient
    failures retry per ``retry`` (same policy as the async client),
    reconnecting after resets.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            self._address, timeout=self._timeout)
        # keep the timeout armed: every recv on this socket (readline
        # below) inherits the read deadline
        self._sock.settimeout(self._timeout)
        self._file = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        perf.count("retries.reconnects")

    def request(self, op: str, params: Optional[dict] = None) -> Any:
        self._next_id += 1
        request_id = self._next_id
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._attempt(request_id, op, params)
            except socket.timeout as exc:
                raise ReproInputError(
                    f"server {self._address[0]}:{self._address[1]} did not "
                    f"reply to {op!r} within {self._timeout:.1f}s") from exc
            except (ServeError, *_CONNECTION_ERRORS) as exc:
                if isinstance(exc, ReproInputError):
                    raise
                if (not self.retry.retryable_error(exc)
                        and not isinstance(exc, _CONNECTION_ERRORS)):
                    raise
                if attempt > self.retry.retries:
                    raise
                perf.count("retries.requests")
                time.sleep(self.retry.delay(attempt))
                if not isinstance(exc, ServeError):
                    try:
                        self._reconnect()
                    except OSError:
                        raise exc

    def _attempt(self, request_id: int, op: str,
                 params: Optional[dict]) -> Any:
        self._sock.sendall(protocol.encode_request(request_id, op, params))
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionResetError("connection closed mid-request")
            if not line.endswith(b"\n"):
                raise ConnectionResetError("reset mid-reply (torn line)")
            try:
                document = protocol.parse_response(line)
            except ValueError:
                continue
            if document.get("id") == request_id:
                return _unwrap(document)

    def close(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["AsyncServeClient", "RETRYABLE_CODES", "RetryPolicy",
           "ServeClient", "ServeError"]
