"""Clients for the newline-delimited JSON synthesis protocol.

Two flavours over the same wire format:

* :class:`AsyncServeClient` — asyncio, **pipelining**: many coroutines
  share one connection, requests are tagged with monotonically
  increasing ids and responses are matched back as they arrive (the
  server may reorder).  This is what the load generator and the
  concurrent-client tests use; it is also how the micro-batcher is fed
  enough simultaneous requests to batch.
* :class:`ServeClient` — blocking sockets, strictly request/response.
  Convenient for scripts and debugging (``repro serve`` + a five-line
  client).

Both raise :class:`ServeError` for protocol-level error replies; the
error's ``code`` distinguishes load-shedding (``overloaded``) from
caller bugs (``bad_request``) so clients can implement retry policies.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """An error reply from the server (carries the protocol code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _unwrap(document: dict) -> Any:
    if document.get("ok"):
        return document.get("result")
    error = document.get("error") or {}
    raise ServeError(error.get("code", "internal"),
                     error.get("message", "unknown server error"))


class AsyncServeClient:
    """One pipelined connection; safe for concurrent ``request`` calls."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self, host: str, port: int) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES)
        return self.attach(reader, writer)

    def attach(self, reader: asyncio.StreamReader,
               writer: asyncio.StreamWriter) -> "AsyncServeClient":
        """Adopt an existing stream pair (pipe/socketpair transports)."""
        self._reader = reader
        self._writer = writer
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("connection closed")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    document = protocol.parse_response(line)
                except ValueError:
                    continue  # not ours to crash on; skip the line
                future = self._pending.pop(document.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(document)
        except (ConnectionResetError, BrokenPipeError, ValueError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, op: str, params: Optional[dict] = None) -> Any:
        """Send one request; resolves to its ``result`` (or raises)."""
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._next_id += 1
        request_id = self._next_id
        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        # write() buffers synchronously; draining per request would cost
        # two event-loop hops on every call, so only apply flow control
        # once the transport's buffer actually backs up
        self._writer.write(protocol.encode_request(request_id, op,
                                                   params))
        if self._writer.transport.get_write_buffer_size() > 65536:
            async with self._write_lock:
                await self._writer.drain()
        return _unwrap(await future)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()


class ServeClient:
    """Blocking request/response client (scripts, debugging)."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def request(self, op: str, params: Optional[dict] = None) -> Any:
        self._next_id += 1
        self._sock.sendall(protocol.encode_request(self._next_id, op,
                                                   params))
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("connection closed mid-request")
            document = protocol.parse_response(line)
            if document.get("id") == self._next_id:
                return _unwrap(document)

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["AsyncServeClient", "ServeClient", "ServeError"]
