"""Adaptive micro-batching for the ``evaluate`` endpoint.

The serving hot path is inference-shaped: many concurrent clients, each
asking for one cover on one (or a few) input vectors.  Answering each
request alone wastes exactly what the batch arena was built to save —
per-call packing, kernel-launch overhead, and a worker-pool round trip
per request.  :class:`BatchCollector` turns concurrency into batch
shape:

* requests append to an open batch; the **first** member arms a linger
  timer (``linger_us``, default :data:`DEFAULT_LINGER_US`);
* the batch flushes when it reaches ``max_batch`` members (*size
  trigger*) or when the timer fires (*linger trigger*) — adaptive the
  same way Kafka's ``linger.ms``/``batch.size`` pair is: under load,
  batches fill before the timer and latency cost is ~0; when idle, a
  lone request waits at most ``linger_us`` microseconds;
* a flush **deduplicates** covers (by canonical encoding) and vectors
  across members, hands one ``{covers, minterms}`` payload to the
  flush function — one :func:`repro.eval.evaluate_covers` arena pass
  on the warm worker pool — and scatters each member's
  ``(cover, vector)`` cells back to its waiting future.

So N concurrent single-vector requests cost one vectorized kernel pass
and one worker round trip, not N.  Members of a failed flush all see
the exception; members never block each other beyond the shared pass.

Tuning: ``REPRO_SERVE_BATCH`` (max members) and
``REPRO_SERVE_LINGER_US`` (linger budget) — see
:meth:`repro.serve.server.ServeConfig.from_env`.  ``max_batch=1``
degenerates to the unbatched per-request path the load benchmark
compares against.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.serve import protocol

#: Default flush size: one arena pass per 64 concurrent requests.
DEFAULT_MAX_BATCH = 64

#: Default linger budget in microseconds — the most latency an idle-
#: period request trades for batching.
DEFAULT_LINGER_US = 1000


class _Member:
    """One queued ``evaluate`` request awaiting its flush."""

    __slots__ = ("cover_key", "cover_payload", "minterms", "future")

    def __init__(self, cover_key: str, cover_payload: dict,
                 minterms: List[int],
                 future: "asyncio.Future[List[int]]") -> None:
        self.cover_key = cover_key
        self.cover_payload = cover_payload
        self.minterms = minterms
        self.future = future


class BatchCollector:
    """Size-or-linger micro-batcher over an async flush function.

    ``flush_fn`` receives one ``{"covers": [...], "minterms": [...]}``
    payload (both axes deduplicated, first-seen order) and returns the
    ``{"masks": [[int]]}`` cross-product result; :meth:`submit` returns
    each member's own row of masks.
    """

    def __init__(self, flush_fn: Callable[[dict], Awaitable[dict]],
                 max_batch: int = DEFAULT_MAX_BATCH,
                 linger_us: int = DEFAULT_LINGER_US) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.flush_fn = flush_fn
        self.max_batch = max_batch
        self.linger_us = max(0, int(linger_us))
        self._members: List[_Member] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    @property
    def pending(self) -> int:
        """Members waiting in the open batch."""
        return len(self._members)

    async def submit(self, cover_payload: dict,
                     minterms: List[int]) -> List[int]:
        """Queue one request; resolves to its per-vector output masks."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[List[int]]" = loop.create_future()
        key = protocol.dumps(cover_payload)
        self._members.append(_Member(key, cover_payload, minterms, future))
        perf.count("serve.batch.requests")
        if len(self._members) >= self.max_batch:
            perf.count("serve.batch.flush_full")
            self._flush_now()
        elif self._timer is None:
            if self.linger_us == 0:
                perf.count("serve.batch.flush_linger")
                self._flush_now()
            else:
                self._timer = loop.call_later(self.linger_us / 1e6,
                                              self._on_linger)
        return await future

    def _on_linger(self) -> None:
        self._timer = None
        if self._members:
            perf.count("serve.batch.flush_linger")
            self._flush_now()

    def _flush_now(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        members, self._members = self._members, []
        asyncio.get_running_loop().create_task(self._run_flush(members))

    async def drain(self) -> None:
        """Flush whatever is queued and wait for it (graceful shutdown)."""
        if self._members:
            perf.count("serve.batch.flush_drain")
            members, self._members = self._members, []
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            await self._run_flush(members)

    # ------------------------------------------------------------------
    # the flush: dedup -> one pass -> scatter
    # ------------------------------------------------------------------
    @staticmethod
    def _pack(members: List[_Member]
              ) -> Tuple[dict, List[int], List[List[int]]]:
        """Deduplicated payload + per-member (cover, vector) indices."""
        cover_index: Dict[str, int] = {}
        covers: List[dict] = []
        vector_index: Dict[int, int] = {}
        vectors: List[int] = []
        member_cover: List[int] = []
        member_vectors: List[List[int]] = []
        for member in members:
            ci = cover_index.get(member.cover_key)
            if ci is None:
                ci = cover_index[member.cover_key] = len(covers)
                covers.append(member.cover_payload)
            member_cover.append(ci)
            rows = []
            for minterm in member.minterms:
                vi = vector_index.get(minterm)
                if vi is None:
                    vi = vector_index[minterm] = len(vectors)
                    vectors.append(minterm)
                rows.append(vi)
            member_vectors.append(rows)
        payload = {"covers": covers, "minterms": vectors}
        return payload, member_cover, member_vectors

    async def _run_flush(self, members: List[_Member]) -> None:
        payload, member_cover, member_vectors = self._pack(members)
        perf.count("serve.batch.flushes")
        perf.count("serve.batch.members", len(members))
        perf.count("serve.batch.unique_covers", len(payload["covers"]))
        perf.count("serve.batch.unique_vectors",
                   len(payload["minterms"]))
        try:
            with perf.timer("serve.batch.flush"):
                result = await self.flush_fn(payload)
            masks = result["masks"]
            errors = result.get("errors", {})
        except BaseException as exc:  # noqa: BLE001 - fan the error out
            for member in members:
                if not member.future.done():
                    member.future.set_exception(exc)
            return
        for member, ci, rows in zip(members, member_cover, member_vectors):
            if member.future.done():
                continue
            if masks[ci] is None:
                from repro.serve.ops import RequestError
                member.future.set_exception(RequestError(
                    errors.get(str(ci), "undecodable cover")))
            else:
                member.future.set_result(
                    [int(masks[ci][vi]) for vi in rows])


__all__ = ["BatchCollector", "DEFAULT_LINGER_US", "DEFAULT_MAX_BATCH"]
