"""The asyncio synthesis server: admission, dispatch, drain.

``SynthesisServer`` puts a network front end on the coalescing
``SynthesisService`` (ROADMAP: "Network-facing synthesis service").
One asyncio event loop handles connections and protocol framing; all
computation runs on the warm multi-process pool behind
:class:`~repro.serve.workers.WorkerBridge`; the ``evaluate`` hot path
goes through the :class:`~repro.serve.batcher.BatchCollector` so
concurrent clients share arena passes.

**Admission control / backpressure.**  A bounded admission budget
(``queue_limit``) caps requests in flight across all connections.  A
request arriving over budget is *shed immediately* with an
``overloaded`` error reply (the 429 analogue) — the client learns in
microseconds instead of queueing into a latency collapse.  Pipelined
requests on one connection dispatch concurrently; responses are
written as they finish and clients correlate by ``id``.

**Graceful drain.**  ``SIGINT``/``SIGTERM`` (or :meth:`drain`) stops
accepting new work: listeners close, fresh requests get
``shutting_down`` replies, the micro-batcher flushes its open batch,
in-flight requests run to completion and their responses are written,
then connections close and the worker bridge shuts down.

**Metrics.**  Every endpoint rides :mod:`repro.perf`:
``serve.request.<op>`` timers (bounded latency reservoirs → p50/p95/
p99 via ``perf.snapshot()``), ``serve.requests`` / ``serve.overloaded``
/ ``serve.errors`` counters, and the batcher's ``serve.batch.*``
family.  The ``stats`` endpoint exposes the snapshot plus the
synthesis-service store counters to remote scrapers.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import sys
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

from repro import faults, perf
from repro.serve import protocol
from repro.serve.batcher import (BatchCollector, DEFAULT_LINGER_US,
                                 DEFAULT_MAX_BATCH)
from repro.serve.ops import OPS, RequestError
from repro.serve.protocol import ProtocolError
from repro.serve.workers import DegradedError, WorkerBridge

#: Environment knobs (documented in the CLI epilog and README).
BATCH_ENV = "REPRO_SERVE_BATCH"
LINGER_ENV = "REPRO_SERVE_LINGER_US"
QUEUE_ENV = "REPRO_SERVE_QUEUE"
JOBS_ENV = "REPRO_SERVE_JOBS"

#: Default admission budget: requests admitted concurrently before
#: load-shedding begins.
DEFAULT_QUEUE_LIMIT = 256


def _hard_reset(writer: asyncio.StreamWriter) -> None:
    """Tear a connection down so the peer notices *immediately*.

    Warm-pool workers are plain forks, so each holds a duplicate of
    every descriptor the server had open when it forked — including
    this connection's.  ``transport.abort()`` only drops the server's
    own descriptor; the kernel keeps the connection alive for the
    duplicates and the peer's pending read blocks until its deadline.
    ``socket.shutdown`` acts on the socket itself, not a descriptor,
    so the peer sees the teardown no matter how many forks hold one.
    """
    transport = writer.transport
    if transport is None:
        return
    sock = transport.get_extra_info("socket")
    if sock is not None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already disconnected
            pass
    transport.abort()


def _env_int(name: str, default: int, floor: int = 1) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer")
    return max(floor, value)


@dataclass
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = DEFAULT_MAX_BATCH
    linger_us: int = DEFAULT_LINGER_US
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    jobs: Optional[int] = None

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        """Defaults from ``REPRO_SERVE_*`` with keyword overrides."""
        config = cls(
            max_batch=_env_int(BATCH_ENV, DEFAULT_MAX_BATCH),
            linger_us=_env_int(LINGER_ENV, DEFAULT_LINGER_US, floor=0),
            queue_limit=_env_int(QUEUE_ENV, DEFAULT_QUEUE_LIMIT),
            jobs=_env_int(JOBS_ENV, 0, floor=0) or None,
        )
        return replace(config, **overrides)


class SynthesisServer:
    """One serving instance: endpoints, batcher, admission, drain."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 executor: Optional[Any] = None) -> None:
        self.config = config or ServeConfig.from_env()
        self.executor = executor if executor is not None else \
            WorkerBridge(jobs=self.config.jobs)
        self.batcher = BatchCollector(
            lambda payload: self.executor.run("evaluate_flush", payload),
            max_batch=self.config.max_batch,
            linger_us=self.config.linger_us)
        self.draining = False
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle_request(self, line: bytes) -> bytes:
        """One request line in, one response line out."""
        try:
            request_id, op, params = protocol.parse_request(line)
        except ProtocolError as exc:
            perf.count("serve.errors")
            return protocol.encode_error(exc.request_id, exc.code, str(exc))

        if self.draining:
            perf.count("serve.shed_draining")
            return protocol.encode_error(request_id,
                                         protocol.ERR_SHUTTING_DOWN,
                                         "server is draining")
        if (self._active >= self.config.queue_limit
                or faults.check("serve.overload") is not None):
            perf.count("serve.overloaded")
            return protocol.encode_error(
                request_id, protocol.ERR_OVERLOADED,
                f"admission queue full "
                f"({self.config.queue_limit} in flight); retry later")

        self._active += 1
        self._idle.clear()
        perf.count("serve.requests")
        start = asyncio.get_running_loop().time()
        try:
            result = await self._dispatch(op, params)
            response = protocol.encode_response(request_id, result)
        except (RequestError, ProtocolError) as exc:
            perf.count("serve.errors")
            code = exc.code if isinstance(exc, ProtocolError) \
                else protocol.ERR_BAD_REQUEST
            response = protocol.encode_error(request_id, code, str(exc))
        except DegradedError as exc:
            perf.count("serve.degraded")
            response = protocol.encode_error(request_id,
                                             protocol.ERR_DEGRADED,
                                             str(exc))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - fault barrier
            perf.count("serve.errors")
            response = protocol.encode_error(request_id,
                                             protocol.ERR_INTERNAL,
                                             repr(exc))
        finally:
            elapsed = asyncio.get_running_loop().time() - start
            # bound the timer-name space: arbitrary client op strings
            # must not grow the perf tables without limit
            label = op if (op in OPS or op in ("ping", "stats", "evaluate")) \
                else "unknown"
            perf.observe(f"serve.request.{label}", elapsed)
            self._active -= 1
            if self._active == 0:
                self._idle.set()
        return response

    async def _dispatch(self, op: str, params: Dict[str, Any]) -> Any:
        if op == "ping":
            from repro import kernels
            return {"pong": True, "backend": kernels.backend(),
                    "pid": os.getpid()}
        if op == "stats":
            return self._stats()
        if op == "evaluate":
            return await self._evaluate(params)
        if op in OPS and op != "evaluate_flush":
            return await self.executor.run(op, params)
        raise ProtocolError(protocol.ERR_UNKNOWN_OP,
                            f"unknown op {op!r}")

    async def _evaluate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The micro-batched single-cover hot path."""
        cover = params.get("cover")
        if not isinstance(cover, dict):
            raise RequestError("param 'cover' must be a cover encoding")
        raw = params.get("minterms")
        if not isinstance(raw, list) or not raw:
            raise RequestError("param 'minterms' must be a non-empty list")
        try:
            minterms = [int(m) for m in raw]
        except (TypeError, ValueError):
            raise RequestError("param 'minterms' must be a list of ints")
        masks = await self.batcher.submit(cover, minterms)
        return {"masks": masks}

    def _stats(self) -> Dict[str, Any]:
        from repro.store.service import get_service
        breaker = getattr(self.executor, "breaker", None)
        data: Dict[str, Any] = {"perf": perf.snapshot(),
                                "active": self._active,
                                "draining": self.draining,
                                "queue_limit": self.config.queue_limit,
                                "max_batch": self.config.max_batch,
                                "linger_us": self.config.linger_us,
                                "breaker": (breaker.snapshot()
                                            if breaker is not None else None)}
        try:
            data["store"] = get_service().stats()
        except OSError:  # pragma: no cover - store root unavailable
            data["store"] = None
        return data

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    async def serve_connection(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """Drive one duplex stream (TCP peer, socketpair, or pipes).

        Requests are dispatched as they arrive (pipelining); a per-
        connection lock serializes response writes.
        """
        write_lock = asyncio.Lock()
        pending: Set[asyncio.Task] = set()

        async def respond(line: bytes) -> None:
            response = await self.handle_request(line)
            flush_fault = faults.check("serve.flush")
            if flush_fault is not None:  # "delay": a stalled flush
                await asyncio.sleep(flush_fault.delay_s)
            if faults.check("serve.conn") is not None:
                # "reset": the peer sees a half-written reply then a
                # hard connection reset — the client must detect the
                # torn line and replay on a fresh connection
                writer.write(response[:max(1, len(response) // 2)])
                _hard_reset(writer)
                return
            # write() appends to the transport buffer synchronously
            # (responses never interleave); drain — two event-loop hops
            # — only once the peer stops keeping up
            writer.write(response)
            if writer.transport.get_write_buffer_size() > 65536:
                async with write_lock:
                    await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, BrokenPipeError):
                    break
                except asyncio.CancelledError:
                    # drain cancels idle reader loops; in-flight
                    # responses were already awaited, so close cleanly
                    break
                except ValueError:
                    # line exceeded the stream limit; the framing is
                    # lost, so report and drop the connection
                    async with write_lock:
                        writer.write(protocol.encode_error(
                            None, protocol.ERR_BAD_REQUEST,
                            "request line too long"))
                        await writer.drain()
                    break
                if not line:
                    break
                task = asyncio.create_task(respond(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                # cancellation re-delivers here when drain tears the
                # connection down; the stream is closing either way
                pass

    async def start_tcp(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""

        async def on_connect(reader, writer):
            task = asyncio.current_task()
            self._connections.add(task)
            try:
                await self.serve_connection(reader, writer)
            finally:
                self._connections.discard(task)

        self._tcp_server = await asyncio.start_server(
            on_connect, host=self.config.host, port=self.config.port,
            limit=protocol.MAX_LINE_BYTES)
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_stdio(self) -> None:
        """Same protocol over this process's stdin/stdout (pipe mode)."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=protocol.MAX_LINE_BYTES)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin.buffer)
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout.buffer)
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        await self.serve_connection(reader, writer)
        await self.drain()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, flush the batcher, finish in-flight work.

        Idempotent: concurrent callers (a second SIGTERM racing the
        stdio EOF path, tests draining twice) all await one shared
        drain task, so the teardown sequence runs exactly once and
        every caller returns only when it has fully finished.
        """
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_once())
        await self._drain_task

    async def _drain_once(self) -> None:
        self.draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        await self.batcher.drain()
        await self._idle.wait()
        # Straggler grace: lines already buffered on a connection when
        # draining flipped — e.g. racing a concurrently-flushing batch
        # window — must still be read and answered ``shutting_down``
        # rather than dying silently when the reader loops are
        # cancelled below.  A short yield window lets those reader
        # loops pick the lines up (their replies are synchronous
        # encode_error's, no worker round-trip).
        for _ in range(10):
            await asyncio.sleep(0.005)
            if self._idle.is_set():
                break
        await self._idle.wait()
        if self._connections:
            # in-flight requests are done; close the reader loops
            for task in list(self._connections):
                task.cancel()
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self.executor.shutdown()

    async def run_tcp(self, ready=None) -> None:
        """Serve TCP until SIGINT/SIGTERM, then drain gracefully.

        ``ready`` (optional callable) receives the bound ``(host,
        port)`` once listening — the CLI prints it, the benchmarks
        parse it.
        """
        host, port = await self.start_tcp()
        if ready is not None:
            ready(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platform without signal support
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.drain()


__all__ = ["BATCH_ENV", "DEFAULT_QUEUE_LIMIT", "JOBS_ENV", "LINGER_ENV",
           "QUEUE_ENV", "ServeConfig", "SynthesisServer"]
