"""Resilient parallel task runner.

The long-running drivers — ``repro suite``, the Table 1/2 benches, the
yield sweeps — fan independent tasks out over worker processes.  A bare
``ProcessPoolExecutor.map`` dies with the first worker: one segfaulting
task (or an operator's ``kill -9``) loses the whole sweep, and a hung
task blocks it forever.  :func:`run_tasks` wraps the pool with the
hardening the ROADMAP's production north star asks for:

* **per-task timeouts** — a task that exceeds its budget is recorded as
  ``timeout`` and the pool is recycled so its worker cannot wedge the
  sweep (default from ``REPRO_TASK_TIMEOUT`` seconds, unlimited when
  unset);
* **bounded retry with exponential backoff** — transient failures
  (including killed workers) are retried up to ``retries`` times;
* **crash isolation** — a ``BrokenProcessPool`` (worker killed,
  interpreter crash) marks only the in-flight tasks for retry, rebuilds
  the pool and continues;
* **JSON-lines checkpoints** — every finished task appends one line to
  the checkpoint file, so an interrupted sweep restarted with
  ``resume=True`` skips completed work and still produces bit-identical
  results (tasks must be deterministic in their payload, which every
  driver here guarantees by deriving per-task seeds from the task key);
* **structured failure reports** — the :class:`RunReport` lists every
  task's status/attempts/error instead of surfacing a mid-run
  traceback.

Results are returned in *task order* regardless of completion order, so
any driver that was bit-identical under ``pool.map`` stays bit-identical
under the resilient runner.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

#: Environment variable giving the default per-task timeout in seconds
#: (unset or empty = no timeout).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Statuses a task can end in.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass
class TaskResult:
    """Outcome of one task.

    Attributes
    ----------
    key:
        The caller-chosen task identifier (checkpoint key; must be
        JSON-serializable and unique within the run).
    status:
        ``"ok"``, ``"failed"`` (raised after all retries) or
        ``"timeout"``.
    value:
        The task function's return value (``None`` unless ok).
    error:
        ``repr`` of the final exception for failed/timed-out tasks.
    attempts:
        How many executions were tried (including the successful one).
    elapsed:
        Wall seconds of the final attempt (0.0 when restored from a
        checkpoint).
    from_checkpoint:
        True when the result was restored rather than computed.
    """

    key: Any
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class RunReport:
    """Structured outcome of a whole run."""

    results: List[TaskResult]
    n_retried: int = 0
    n_pool_restarts: int = 0
    checkpoint_path: Optional[str] = None
    resumed: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every task finished successfully."""
        return all(r.ok for r in self.results)

    def values(self) -> List[Any]:
        """Per-task values in task order; raises if any task failed."""
        self.raise_on_failure()
        return [r.value for r in self.results]

    def failures(self) -> List[TaskResult]:
        """The tasks that did not finish successfully."""
        return [r for r in self.results if not r.ok]

    def raise_on_failure(self) -> None:
        """Raise a :class:`TaskFailure` summarizing failed tasks, if any."""
        failed = self.failures()
        if failed:
            raise TaskFailure(failed)

    def summary(self) -> dict:
        """A JSON-ready digest (embedded in failure-report artifacts)."""
        return {
            "tasks": len(self.results),
            "ok": sum(1 for r in self.results if r.ok),
            "failed": sum(1 for r in self.results
                          if r.status == STATUS_FAILED),
            "timeout": sum(1 for r in self.results
                           if r.status == STATUS_TIMEOUT),
            "retried": self.n_retried,
            "pool_restarts": self.n_pool_restarts,
            "resumed": self.resumed,
            "wall_seconds": round(self.wall_seconds, 3),
            "failures": [{"key": r.key, "status": r.status,
                          "error": r.error, "attempts": r.attempts}
                         for r in self.failures()],
        }


class TaskFailure(RuntimeError):
    """Raised by :meth:`RunReport.values` when tasks failed."""

    def __init__(self, failed: Sequence[TaskResult]):
        self.failed = list(failed)
        lines = [f"{len(failed)} task(s) failed:"]
        for r in failed[:5]:
            lines.append(f"  {r.key!r}: {r.status} after {r.attempts} "
                         f"attempt(s): {r.error}")
        if len(failed) > 5:
            lines.append(f"  ... and {len(failed) - 5} more")
        super().__init__("\n".join(lines))


def default_timeout() -> Optional[float]:
    """Per-task timeout from ``REPRO_TASK_TIMEOUT`` (None = unlimited)."""
    raw = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{TASK_TIMEOUT_ENV}={raw!r} is not a number")
    return value if value > 0 else None


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def _key_token(key: Any) -> str:
    """Canonical JSON token of a task key (dict-lookup safe)."""
    return json.dumps(key, sort_keys=True)


def load_checkpoint(path: str) -> Dict[str, dict]:
    """Parse a JSONL checkpoint into ``{key_token: record}``.

    Truncated trailing lines (the interrupted write of a killed run) and
    unparsable lines are skipped — a checkpoint is a cache, never a
    source of errors.
    """
    records: Dict[str, dict] = {}
    if not os.path.exists(path):
        return records
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
            if not isinstance(record, dict) or "key" not in record:
                continue
            if record.get("status") == STATUS_OK:
                records[_key_token(record["key"])] = record
    return records


def _append_checkpoint(handle, key: Any, value: Any, elapsed: float) -> None:
    handle.write(json.dumps({"key": key, "status": STATUS_OK,
                             "value": value,
                             "elapsed": round(elapsed, 6)}) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# worker process hygiene
# ----------------------------------------------------------------------
#: Start-method override for worker pools ("fork", "forkserver",
#: "spawn").  The default is ``fork``.
MP_START_ENV = "REPRO_MP_START"

_mp_context_cache: Dict[str, Any] = {}
_mp_context_lock = threading.Lock()


def _mp_context():
    """The start method for worker pools (``REPRO_MP_START`` overrides).

    The default is plain ``fork``: workers share copy-on-write pages
    with the submitting process, which on the single- and dual-core
    hosts this project targets is worth a large fraction of batched
    serve throughput (private pages mean the parent and worker evict
    each other's cache lines on every context switch).

    Fork children do duplicate every file descriptor the parent has
    open at fork time — including live TCP connections of ``repro
    serve``.  A connection close/abort that relied on descriptor
    refcounts would therefore never reach the peer while a worker
    holds the duplicate; the server instead calls ``socket.shutdown``
    on the underlying socket wherever it tears a connection down
    deliberately, which acts on the socket itself and signals the peer
    no matter how many duplicates exist.

    ``REPRO_MP_START=forkserver`` opts into a pre-warmed fork server
    (fork+exec, clean descriptor tables, ``repro.serve.ops``
    preloaded) when descriptor hygiene matters more than throughput.
    """
    method = os.environ.get(MP_START_ENV, "fork").strip().lower()
    with _mp_context_lock:
        context = _mp_context_cache.get(method)
        if context is None:
            try:
                context = multiprocessing.get_context(method)
                if method == "forkserver":
                    context.set_forkserver_preload(["repro.serve.ops"])
            except ValueError:  # pragma: no cover - platform fallback
                context = multiprocessing.get_context()
            _mp_context_cache[method] = context
        return context


def _repro_env() -> Dict[str, str]:
    """The ``REPRO_*`` environment to mirror into worker processes."""
    return {key: value for key, value in os.environ.items()
            if key.startswith("REPRO_")}


def _worker_init(env: Dict[str, str]) -> None:
    """Executor initializer: sync ``REPRO_*`` env into a fresh worker.

    Fork-server children inherit the environment the fork server was
    *started* with, not the submitting process's environment at submit
    time — fault schedules (``REPRO_FAULTS``) or backend switches
    (``REPRO_KERNEL``) applied later would silently never reach the
    workers.  Each executor snapshots the parent's ``REPRO_*`` keys at
    construction and replays them here.
    """
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


# ----------------------------------------------------------------------
# the warm pool
# ----------------------------------------------------------------------
class WarmPool:
    """A reusable, lazily-started worker pool with crash recovery.

    :func:`run_tasks` builds and tears down a ``ProcessPoolExecutor``
    per call — right for the one-shot drivers, wrong for serving: a
    request-rate workload would pay worker spin-up (interpreter fork +
    import) on every call.  ``WarmPool`` keeps one pool alive across
    calls:

    * **lazy** — no processes exist until the first :meth:`submit`;
    * **recyclable** — :meth:`recycle` replaces a broken/wedged pool
      (``BrokenProcessPool``, timeouts) with a fresh one, counted in
      :attr:`n_recycles`;
    * **shared** — :func:`shared_pool` hands out one process-wide
      instance, so the synthesis service's batch-eval miss paths and
      the serve worker bridge amortize the same warm workers.

    Thread-safe: submissions and recycles serialize on an internal
    lock (futures themselves are waited on outside it).
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 2)
        self.n_recycles = 0
        self._generation = 0
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def started(self) -> bool:
        """True once worker processes exist (and were not shut down)."""
        return self._executor is not None

    @property
    def generation(self) -> int:
        """Bumped on every recycle; lets callers dedupe recycles.

        One crashed worker breaks *every* in-flight future, so N
        concurrent callers would otherwise recycle N times — enough to
        spuriously trip a circuit breaker on a single crash.  A caller
        snapshots the generation before submitting and passes it to
        :meth:`recycle` as ``seen``; only the first caller actually
        replaces the pool.
        """
        return self._generation

    def _ensure_locked(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_mp_context(),
                initializer=_worker_init, initargs=(_repro_env(),))
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any):
        """Submit ``fn(*args)``; starts the pool on first use.

        A pool found broken at submission time is recycled once before
        the submit is retried (the caller still owns result-side
        failures).  When ``worker.*`` failpoints are armed
        (:mod:`repro.faults`), the task is wrapped so the
        ``worker.task`` site runs inside the worker process.
        """
        from repro import faults
        if faults.env_mentions("worker."):
            args = (fn,) + args
            fn = _faulted_task
        with self._lock:
            try:
                return self._ensure_locked().submit(fn, *args)
            except (BrokenProcessPool, RuntimeError):
                self._recycle_locked()
                return self._ensure_locked().submit(fn, *args)

    def _recycle_locked(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=_mp_context(),
            initializer=_worker_init, initargs=(_repro_env(),))
        self.n_recycles += 1
        self._generation += 1

    def recycle(self, seen: Optional[int] = None) -> bool:
        """Replace the pool (crashed or wedged workers) with a fresh one.

        ``seen`` is the :attr:`generation` the caller observed before
        its failure: if the pool was already recycled past it (another
        caller of the same crash got here first), this is a no-op.
        Returns True when this call actually recycled.
        """
        with self._lock:
            if seen is not None and self._generation != seen:
                return False
            self._recycle_locked()
            return True

    def shutdown(self, wait: bool = False) -> None:
        """Tear the workers down; the next submit lazily restarts."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=wait, cancel_futures=True)
                self._executor = None

    def run(self, fn: Callable[..., Any], payload: Any, *,
            timeout: Optional[float] = None, retries: int = 2,
            backoff: float = 0.1) -> Any:
        """Synchronous ``fn(payload)`` with timeout/retry/crash recovery.

        The warm-pool analogue of a one-task :func:`run_tasks`: a
        ``BrokenProcessPool`` or an expired ``timeout`` recycles the
        pool and retries (``retries`` extra attempts, exponential
        ``backoff``); the final failure re-raises.
        """
        if timeout is None:
            timeout = default_timeout()
        attempt = 0
        while True:
            attempt += 1
            generation = self.generation
            future = self.submit(fn, payload)
            try:
                return future.result(timeout=timeout)
            except (BrokenProcessPool, FutureTimeout) as exc:
                self.recycle(seen=generation)
                if attempt > retries:
                    if isinstance(exc, FutureTimeout):
                        raise TimeoutError(
                            f"task timed out after {timeout:.1f}s "
                            f"({attempt} attempt(s))") from exc
                    raise
                if backoff:
                    time.sleep(backoff * (2 ** (attempt - 1)))


def _faulted_task(fn: Callable[..., Any], *args: Any) -> Any:
    """Worker-side shim running the ``worker.task`` failpoint first.

    Top-level so it pickles; the fault decision happens *inside* the
    worker process, whose :mod:`repro.faults` plan comes from the
    inherited environment (``REPRO_FAULTS``) and therefore replays its
    own deterministic per-site sequence.
    """
    from repro import faults
    faults.maybe_fail_worker_task()
    return fn(*args)


_shared_pool: Optional[WarmPool] = None
_shared_pool_lock = threading.Lock()


def shared_pool(jobs: Optional[int] = None) -> WarmPool:
    """The process-wide :class:`WarmPool` (created on first call).

    ``jobs`` only sizes the first construction; later callers share
    whatever exists (a serving process has exactly one worker fleet).
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = WarmPool(jobs)
        return _shared_pool


def reset_shared_pool() -> None:
    """Shut down and drop the shared pool (tests isolate with this)."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.shutdown()
            _shared_pool = None


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """Book-keeping of one not-yet-finished task."""

    index: int
    key: Any
    payload: Any
    attempts: int = 0
    last_error: Optional[str] = None
    next_eligible: float = 0.0
    started: float = 0.0
    future: Any = None


def run_tasks(fn: Callable[[Any], Any], tasks: Sequence[Tuple[Any, Any]],
              *, jobs: int = 1, timeout: Optional[float] = None,
              retries: int = 2, backoff: float = 0.25,
              checkpoint: Optional[str] = None, resume: bool = False,
              encode: Callable[[Any], Any] = lambda v: v,
              decode: Callable[[Any], Any] = lambda v: v,
              pool: Optional[WarmPool] = None) -> RunReport:
    """Run ``fn(payload)`` for every ``(key, payload)`` task, resiliently.

    Parameters
    ----------
    fn:
        Top-level (picklable) function of one payload argument.
    tasks:
        ``(key, payload)`` pairs; keys must be unique and
        JSON-serializable (they index the checkpoint file).
    jobs:
        Worker processes.  ``jobs <= 1`` runs inline (no pool, no
        timeout enforcement) — checkpoints and retries still apply.
    timeout:
        Per-task wall-second budget; defaults to ``REPRO_TASK_TIMEOUT``.
        On expiry the task is retried (fresh pool) until its retry
        budget is spent, then recorded as ``"timeout"``.
    retries:
        Extra executions allowed per task after its first.
    backoff:
        Base of the exponential retry delay: attempt ``k`` waits
        ``backoff * 2**(k-1)`` seconds (0 disables the delay).
    checkpoint:
        JSONL file path; finished tasks append ``{key, status, value}``
        records.  Values pass through ``encode`` (must become
        JSON-serializable).
    resume:
        Restore previously checkpointed tasks (through ``decode``)
        instead of recomputing them.
    pool:
        A :class:`WarmPool` to execute on instead of a one-shot
        ``ProcessPoolExecutor``.  The pool stays warm afterwards (the
        caller owns its lifetime); crash/timeout recovery recycles it
        in place.  Implies pooled execution regardless of ``jobs``.
    """
    if timeout is None:
        timeout = default_timeout()

    tasks = list(tasks)
    tokens = [_key_token(key) for key, _payload in tasks]
    if len(set(tokens)) != len(tokens):
        raise ValueError("task keys must be unique")

    results: List[Optional[TaskResult]] = [None] * len(tasks)
    report = RunReport(results=[], checkpoint_path=checkpoint)
    start_time = time.perf_counter()

    # --- restore from the checkpoint ---------------------------------
    if checkpoint and resume:
        restored = load_checkpoint(checkpoint)
        for i, token in enumerate(tokens):
            record = restored.get(token)
            if record is not None:
                results[i] = TaskResult(
                    key=tasks[i][0], status=STATUS_OK,
                    value=decode(record.get("value")),
                    attempts=0, elapsed=0.0, from_checkpoint=True)
        report.resumed = sum(1 for r in results if r is not None)

    pending = [_Pending(index=i, key=key, payload=payload)
               for i, (key, payload) in enumerate(tasks)
               if results[i] is None]

    ckpt_handle = None
    if checkpoint:
        mode = "a" if resume else "w"
        os.makedirs(os.path.dirname(os.path.abspath(checkpoint)),
                    exist_ok=True)
        ckpt_handle = open(checkpoint, mode)

    try:
        if pool is None and jobs <= 1:
            _run_inline(fn, pending, results, report, retries, backoff,
                        ckpt_handle, encode)
        else:
            _run_pooled(fn, pending, results, report, jobs, timeout,
                        retries, backoff, ckpt_handle, encode, pool)
    finally:
        if ckpt_handle is not None:
            ckpt_handle.close()

    report.results = [r for r in results if r is not None]
    report.wall_seconds = time.perf_counter() - start_time
    return report


def _record(results, report, pending: _Pending, result: TaskResult,
            ckpt_handle, encode) -> None:
    results[pending.index] = result
    if result.ok and ckpt_handle is not None:
        _append_checkpoint(ckpt_handle, result.key, encode(result.value),
                           result.elapsed)


def _retry_or_fail(pending: _Pending, retries: int, backoff: float,
                   status: str, error: str, queue: List[_Pending],
                   results, report, ckpt_handle, encode) -> None:
    """Requeue a failed attempt, or record the terminal failure."""
    if pending.attempts <= retries:
        delay = backoff * (2 ** (pending.attempts - 1)) if backoff else 0.0
        pending.next_eligible = time.monotonic() + delay
        pending.last_error = error
        report.n_retried += 1
        queue.append(pending)
    else:
        _record(results, report, pending,
                TaskResult(key=pending.key, status=status, error=error,
                           attempts=pending.attempts), ckpt_handle, encode)


def _run_inline(fn, pending, results, report, retries, backoff,
                ckpt_handle, encode) -> None:
    """Sequential execution with the same retry/checkpoint semantics."""
    queue = list(pending)
    while queue:
        item = queue.pop(0)
        wait_s = item.next_eligible - time.monotonic()
        if wait_s > 0:
            time.sleep(wait_s)
        item.attempts += 1
        started = time.perf_counter()
        try:
            value = fn(item.payload)
        except Exception as exc:  # noqa: BLE001 - structured reporting
            _retry_or_fail(item, retries, backoff, STATUS_FAILED,
                           repr(exc), queue, results, report,
                           ckpt_handle, encode)
            continue
        _record(results, report, item,
                TaskResult(key=item.key, status=STATUS_OK, value=value,
                           attempts=item.attempts,
                           elapsed=time.perf_counter() - started),
                ckpt_handle, encode)


def _run_pooled(fn, pending, results, report, jobs, timeout, retries,
                backoff, ckpt_handle, encode,
                warm: Optional[WarmPool] = None) -> None:
    """Pool execution with crash isolation and timeout enforcement."""
    queue: List[_Pending] = list(pending)
    in_flight: Dict[Any, _Pending] = {}
    if warm is not None:
        jobs = warm.jobs
        submit = warm.submit
    else:
        pool = ProcessPoolExecutor(max_workers=jobs)
        submit = lambda f, payload: pool.submit(f, payload)  # noqa: E731
    poll = 0.05 if timeout else 0.5

    def recycle_pool() -> None:
        if warm is not None:
            warm.recycle()
        else:
            nonlocal pool
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=jobs)
        report.n_pool_restarts += 1

    try:
        while queue or in_flight:
            # fill the pool up to `jobs` eligible tasks
            now = time.monotonic()
            submitted_any = False
            for item in list(queue):
                if len(in_flight) >= jobs:
                    break
                if item.next_eligible > now:
                    continue
                queue.remove(item)
                item.attempts += 1
                item.started = time.monotonic()
                try:
                    item.future = submit(fn, item.payload)
                except BrokenProcessPool:
                    recycle_pool()
                    item.attempts -= 1
                    queue.insert(0, item)
                    continue
                in_flight[item.future] = item
                submitted_any = True

            if not in_flight:
                if queue and not submitted_any:
                    # everything is backing off; sleep to the next slot
                    wake = min(i.next_eligible for i in queue)
                    time.sleep(max(0.0, wake - time.monotonic()) or 0.01)
                continue

            try:
                done, _ = wait(list(in_flight), timeout=poll,
                               return_when=FIRST_COMPLETED)
            except BrokenProcessPool:  # pragma: no cover - defensive
                done = set()

            for future in done:
                item = in_flight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # the worker died (kill -9, segfault): everything
                    # in flight is suspect — requeue it all on a new pool
                    _retry_or_fail(item, retries, backoff, STATUS_FAILED,
                                   "worker process died (BrokenProcessPool)",
                                   queue, results, report, ckpt_handle,
                                   encode)
                    for other_future, other in list(in_flight.items()):
                        in_flight.pop(other_future)
                        other.attempts -= 1  # not the other tasks' fault
                        _retry_or_fail(other, retries, backoff,
                                       STATUS_FAILED,
                                       "worker pool broke mid-task",
                                       queue, results, report,
                                       ckpt_handle, encode)
                    recycle_pool()
                    break
                except Exception as exc:  # noqa: BLE001
                    _retry_or_fail(item, retries, backoff, STATUS_FAILED,
                                   repr(exc), queue, results, report,
                                   ckpt_handle, encode)
                else:
                    _record(results, report, item,
                            TaskResult(key=item.key, status=STATUS_OK,
                                       value=value, attempts=item.attempts,
                                       elapsed=time.monotonic() - item.started),
                            ckpt_handle, encode)

            # enforce per-task timeouts on whatever is still running
            if timeout:
                now = time.monotonic()
                expired = [item for item in in_flight.values()
                           if now - item.started > timeout]
                if expired:
                    # a stuck worker cannot be interrupted politely:
                    # recycle the whole pool and retry the survivors
                    for future, item in list(in_flight.items()):
                        in_flight.pop(future)
                        if item in expired:
                            _retry_or_fail(item, retries, backoff,
                                           STATUS_TIMEOUT,
                                           f"timed out after {timeout:.1f}s",
                                           queue, results, report,
                                           ckpt_handle, encode)
                        else:
                            item.attempts -= 1  # collateral, free retry
                            _retry_or_fail(item, retries, backoff,
                                           STATUS_FAILED,
                                           "pool recycled on a sibling "
                                           "timeout", queue, results,
                                           report, ckpt_handle, encode)
                    recycle_pool()
    finally:
        if warm is None:
            pool.shutdown(wait=False, cancel_futures=True)


__all__ = ["RunReport", "TaskFailure", "TaskResult", "TASK_TIMEOUT_ENV",
           "STATUS_FAILED", "STATUS_OK", "STATUS_TIMEOUT", "WarmPool",
           "default_timeout", "load_checkpoint", "reset_shared_pool",
           "run_tasks", "shared_pool"]
