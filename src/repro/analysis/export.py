"""CSV export of bench results.

Every bench prints its table to the terminal; for plotting or external
analysis the same rows can be exported as CSV.  The writer is
deliberately tiny (stdlib ``csv``) but shared, so all exported
artifacts have the same shape: a header row, stringified cells, UTF-8.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Sequence, Union


def rows_to_csv(headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (header first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_cell(value) for value in row])
    return buffer.getvalue()


def write_csv(path: Union[str, Path], headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to ``path`` and return it."""
    path = Path(path)
    path.write_text(rows_to_csv(headers, rows), encoding="utf-8")
    return path


def sweep_to_csv(points, param_keys: Sequence[str],
                 value_keys: Sequence[str]) -> str:
    """CSV of :class:`repro.analysis.sweep.SweepPoint` results."""
    headers = list(param_keys) + list(value_keys)
    rows = [point.row(param_keys, value_keys) for point in points]
    return rows_to_csv(headers, rows)


def _cell(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.10g}"
    return value
