"""CSV / JSON export of bench and characterization results.

Every bench prints its table to the terminal; for plotting or external
analysis the same rows can be exported as CSV.  The writer is
deliberately tiny (stdlib ``csv``) but shared, so all exported
artifacts have the same shape: a header row, stringified cells, UTF-8.

The characterizer's machine-readable **datasheet** also lands here:
:func:`validate_datasheet` enforces the schema contract and
:func:`write_datasheet` renders it as canonical sorted JSON, so two
byte-identical sweeps export byte-identical files.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union


def rows_to_csv(headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (header first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_cell(value) for value in row])
    return buffer.getvalue()


def write_csv(path: Union[str, Path], headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to ``path`` and return it."""
    path = Path(path)
    path.write_text(rows_to_csv(headers, rows), encoding="utf-8")
    return path


def sweep_to_csv(points, param_keys: Sequence[str],
                 value_keys: Sequence[str]) -> str:
    """CSV of :class:`repro.analysis.sweep.SweepPoint` results."""
    headers = list(param_keys) + list(value_keys)
    rows = [point.row(param_keys, value_keys) for point in points]
    return rows_to_csv(headers, rows)


def _cell(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.10g}"
    return value


# ----------------------------------------------------------------------
# datasheets
# ----------------------------------------------------------------------
#: Required blocks of one technology entry in a datasheet.
_TECH_BLOCKS = ("tech", "array", "area", "timing", "power", "variation")

#: Required top-level datasheet fields.
_DATASHEET_FIELDS = ("schema", "version", "settings", "tech_digests",
                     "function", "technologies", "yield")


def validate_datasheet(data: Any) -> Dict[str, Any]:
    """Structurally validate a characterization datasheet.

    Raises :class:`ValueError` naming the first offending field;
    returns ``data`` unchanged on success, so producers can validate
    inline (``return validate_datasheet(sheet)``).
    """
    from repro.analysis.characterize import (DATASHEET_SCHEMA,
                                             DATASHEET_VERSION)

    if not isinstance(data, dict):
        raise ValueError(f"datasheet must be an object, got "
                         f"{type(data).__name__}")
    for field in _DATASHEET_FIELDS:
        if field not in data:
            raise ValueError(f"datasheet missing field {field!r}")
    if data["schema"] != DATASHEET_SCHEMA:
        raise ValueError(f"datasheet schema {data['schema']!r} != "
                         f"{DATASHEET_SCHEMA!r}")
    if data["version"] != DATASHEET_VERSION:
        raise ValueError(f"datasheet version {data['version']!r} != "
                         f"{DATASHEET_VERSION}")
    techs = data["technologies"]
    if not isinstance(techs, list) or not techs:
        raise ValueError("datasheet 'technologies' must be a non-empty "
                         "list")
    if len(techs) != len(data["tech_digests"]):
        raise ValueError("datasheet 'technologies' and 'tech_digests' "
                         "disagree in length")
    for i, entry in enumerate(techs):
        for block in _TECH_BLOCKS:
            if block not in entry:
                raise ValueError(f"technologies[{i}] missing block "
                                 f"{block!r}")
        if entry["tech"].get("digest") != data["tech_digests"][i]:
            raise ValueError(f"technologies[{i}] digest disagrees with "
                             f"tech_digests[{i}]")
    if not isinstance(data["yield"], list):
        raise ValueError("datasheet 'yield' must be a list")
    for i, entry in enumerate(data["yield"]):
        for field in ("tech", "spare_rows", "spare_cols", "report"):
            if field not in entry:
                raise ValueError(f"yield[{i}] missing field {field!r}")
    return data


def datasheet_json(data: Dict[str, Any]) -> str:
    """The canonical (sorted, 2-space) JSON rendering of a datasheet."""
    return json.dumps(validate_datasheet(data), indent=2, sort_keys=True) \
        + "\n"


def write_datasheet(path: Union[str, Path], data: Dict[str, Any]) -> Path:
    """Validate and write one datasheet; returns the path."""
    path = Path(path)
    path.write_text(datasheet_json(data), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# workload curve reports
# ----------------------------------------------------------------------
#: Required top-level fields of one workload curve report.
_CURVE_FIELDS = ("schema", "version", "settings", "model", "function",
                 "clean", "technologies", "points")

#: Required fields of each defect-rate point.
_POINT_FIELDS = ("p_stuck_off", "p_stuck_on", "yield", "accuracy")

#: Wilson-interval fields every point's yield block must carry.
_CI_FIELDS = ("raw_ci95", "repaired_ci95")


def validate_curve_report(data: Any) -> Dict[str, Any]:
    """Structurally validate a workload accuracy/defect curve report.

    Raises :class:`ValueError` naming the first offending field;
    returns ``data`` unchanged on success (same contract as
    :func:`validate_datasheet`).
    """
    from repro.workloads.curves import CURVE_SCHEMA, CURVE_VERSION

    if not isinstance(data, dict):
        raise ValueError(f"curve report must be an object, got "
                         f"{type(data).__name__}")
    for field in _CURVE_FIELDS:
        if field not in data:
            raise ValueError(f"curve report missing field {field!r}")
    if data["schema"] != CURVE_SCHEMA:
        raise ValueError(f"curve schema {data['schema']!r} != "
                         f"{CURVE_SCHEMA!r}")
    if data["version"] != CURVE_VERSION:
        raise ValueError(f"curve version {data['version']!r} != "
                         f"{CURVE_VERSION}")
    model = data["model"]
    digest = model.get("digest") if isinstance(model, dict) else None
    if not (isinstance(digest, str) and len(digest) == 64
            and all(c in "0123456789abcdef" for c in digest)):
        raise ValueError("curve 'model.digest' must be a 64-hex digest")
    techs = data["technologies"]
    if not isinstance(techs, list) or not techs:
        raise ValueError("curve 'technologies' must be a non-empty list")
    for i, entry in enumerate(techs):
        for field in ("tech", "digest", "area_l2"):
            if field not in entry:
                raise ValueError(f"technologies[{i}] missing field "
                                 f"{field!r}")
    points = data["points"]
    if not isinstance(points, list) or not points:
        raise ValueError("curve 'points' must be a non-empty list")
    for i, point in enumerate(points):
        for field in _POINT_FIELDS:
            if field not in point:
                raise ValueError(f"points[{i}] missing field {field!r}")
        for field in _CI_FIELDS:
            interval = point["yield"].get(field)
            if not (isinstance(interval, list) and len(interval) == 2):
                raise ValueError(f"points[{i}].yield.{field} must be a "
                                 f"[lo, hi] pair")
    return data


def curve_json(data: Dict[str, Any]) -> str:
    """The canonical (sorted, 2-space) JSON rendering of a curve report."""
    return json.dumps(validate_curve_report(data), indent=2,
                      sort_keys=True) + "\n"


def write_curve_report(path: Union[str, Path],
                       data: Dict[str, Any]) -> Path:
    """Validate and write one curve report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(curve_json(data), encoding="utf-8")
    return path
