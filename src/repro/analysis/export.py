"""CSV / JSON export of bench and characterization results.

Every bench prints its table to the terminal; for plotting or external
analysis the same rows can be exported as CSV.  The writer is
deliberately tiny (stdlib ``csv``) but shared, so all exported
artifacts have the same shape: a header row, stringified cells, UTF-8.

The characterizer's machine-readable **datasheet** also lands here:
:func:`validate_datasheet` enforces the schema contract and
:func:`write_datasheet` renders it as canonical sorted JSON, so two
byte-identical sweeps export byte-identical files.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union


def rows_to_csv(headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (header first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_cell(value) for value in row])
    return buffer.getvalue()


def write_csv(path: Union[str, Path], headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to ``path`` and return it."""
    path = Path(path)
    path.write_text(rows_to_csv(headers, rows), encoding="utf-8")
    return path


def sweep_to_csv(points, param_keys: Sequence[str],
                 value_keys: Sequence[str]) -> str:
    """CSV of :class:`repro.analysis.sweep.SweepPoint` results."""
    headers = list(param_keys) + list(value_keys)
    rows = [point.row(param_keys, value_keys) for point in points]
    return rows_to_csv(headers, rows)


def _cell(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.10g}"
    return value


# ----------------------------------------------------------------------
# datasheets
# ----------------------------------------------------------------------
#: Required blocks of one technology entry in a datasheet.
_TECH_BLOCKS = ("tech", "array", "area", "timing", "power", "variation")

#: Required top-level datasheet fields.
_DATASHEET_FIELDS = ("schema", "version", "settings", "tech_digests",
                     "function", "technologies", "yield")


def validate_datasheet(data: Any) -> Dict[str, Any]:
    """Structurally validate a characterization datasheet.

    Raises :class:`ValueError` naming the first offending field;
    returns ``data`` unchanged on success, so producers can validate
    inline (``return validate_datasheet(sheet)``).
    """
    from repro.analysis.characterize import (DATASHEET_SCHEMA,
                                             DATASHEET_VERSION)

    if not isinstance(data, dict):
        raise ValueError(f"datasheet must be an object, got "
                         f"{type(data).__name__}")
    for field in _DATASHEET_FIELDS:
        if field not in data:
            raise ValueError(f"datasheet missing field {field!r}")
    if data["schema"] != DATASHEET_SCHEMA:
        raise ValueError(f"datasheet schema {data['schema']!r} != "
                         f"{DATASHEET_SCHEMA!r}")
    if data["version"] != DATASHEET_VERSION:
        raise ValueError(f"datasheet version {data['version']!r} != "
                         f"{DATASHEET_VERSION}")
    techs = data["technologies"]
    if not isinstance(techs, list) or not techs:
        raise ValueError("datasheet 'technologies' must be a non-empty "
                         "list")
    if len(techs) != len(data["tech_digests"]):
        raise ValueError("datasheet 'technologies' and 'tech_digests' "
                         "disagree in length")
    for i, entry in enumerate(techs):
        for block in _TECH_BLOCKS:
            if block not in entry:
                raise ValueError(f"technologies[{i}] missing block "
                                 f"{block!r}")
        if entry["tech"].get("digest") != data["tech_digests"][i]:
            raise ValueError(f"technologies[{i}] digest disagrees with "
                             f"tech_digests[{i}]")
    if not isinstance(data["yield"], list):
        raise ValueError("datasheet 'yield' must be a list")
    for i, entry in enumerate(data["yield"]):
        for field in ("tech", "spare_rows", "spare_cols", "report"):
            if field not in entry:
                raise ValueError(f"yield[{i}] missing field {field!r}")
    return data


def datasheet_json(data: Dict[str, Any]) -> str:
    """The canonical (sorted, 2-space) JSON rendering of a datasheet."""
    return json.dumps(validate_datasheet(data), indent=2, sort_keys=True) \
        + "\n"


def write_datasheet(path: Union[str, Path], data: Dict[str, Any]) -> Path:
    """Validate and write one datasheet; returns the path."""
    path = Path(path)
    path.write_text(datasheet_json(data), encoding="utf-8")
    return path
