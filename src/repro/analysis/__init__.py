"""Reporting and sweep utilities shared by the benches."""

from repro.analysis.report import render_table, format_area, format_percent
from repro.analysis.sweep import sweep, SweepPoint

__all__ = [
    "render_table",
    "format_area",
    "format_percent",
    "sweep",
    "SweepPoint",
]
