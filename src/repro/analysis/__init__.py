"""Reporting, sweep and characterization utilities shared by the benches."""

from repro.analysis.characterize import (CharacterizeSettings,
                                         characterize)
from repro.analysis.export import (validate_datasheet, write_datasheet)
from repro.analysis.report import render_table, format_area, format_percent
from repro.analysis.sweep import sweep, SweepPoint

__all__ = [
    "CharacterizeSettings",
    "characterize",
    "render_table",
    "format_area",
    "format_percent",
    "sweep",
    "SweepPoint",
    "validate_datasheet",
    "write_datasheet",
]
