"""Monospace table rendering for bench output.

Every bench prints its results with :func:`render_table` so the output
visually mirrors the paper's tables (same row and column labels).
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Column widths adapt to content; all cells are stringified.  The
    optional ``title`` becomes an underlined heading.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    n_cols = len(str_headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError("row width does not match the header")

    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(str_headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)


def format_area(area_l2: float) -> str:
    """Area in ``L^2`` with thousands separators, as Table 1 prints it."""
    if float(area_l2).is_integer():
        return f"{int(area_l2):,}".replace(",", " ")
    return f"{area_l2:,.1f}".replace(",", " ")


def format_percent(value: float, decimals: int = 1) -> str:
    """A percentage cell (positive = saving, negative = overhead)."""
    return f"{value:+.{decimals}f}%"
