"""Parameter sweeps for the ablation benches.

A sweep runs a callable over a parameter grid and collects the results
as :class:`SweepPoint` rows — deliberately tiny, but shared so every
ablation bench produces the same record shape.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence


@dataclass
class SweepPoint:
    """One grid point: the parameters used and the measured values."""

    params: Dict[str, Any]
    values: Dict[str, Any]

    def row(self, param_keys: Sequence[str],
            value_keys: Sequence[str]) -> List[Any]:
        """Flatten into a table row in the requested key order."""
        return ([self.params[k] for k in param_keys]
                + [self.values[k] for k in value_keys])


def sweep(fn: Callable[..., Mapping[str, Any]],
          grid: Mapping[str, Iterable[Any]]) -> List[SweepPoint]:
    """Run ``fn(**params)`` over the cartesian grid of ``grid``.

    ``fn`` must return a mapping of measured values; the sweep is
    deterministic (grid order = insertion order of ``grid``).
    """
    keys = list(grid)
    points = []
    for combo in itertools.product(*(list(grid[k]) for k in keys)):
        params = dict(zip(keys, combo))
        values = dict(fn(**params))
        points.append(SweepPoint(params=params, values=values))
    return points
