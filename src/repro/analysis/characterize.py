"""Technology characterization: one function, N technologies, one datasheet.

The characterizer is the integration point of the declarative
technology layer (:mod:`repro.tech`): it takes a benchmark function and
a list of technology specs (registry names or descriptor-file paths)
and pushes each through the full pipeline —

    minimize -> map -> area / delay / power -> variation Monte Carlo
    -> manufacturing-yield Monte Carlo (Wilson CIs)

— emitting one schema-versioned, machine-readable **datasheet** (see
:func:`repro.analysis.export.validate_datasheet` for the contract).

Every (technology, cell) pair is an independent task on the resilient
runner (:func:`repro.runner.run_tasks`): crash-isolated, retried, and
checkpoint-resumable, with results aggregated in deterministic task
order, so a sweep produces byte-identical datasheets for any job count
and across resumes.  The finished datasheet is a content-addressed
artifact (kind ``characterize``) keyed by the settings and every
technology's content digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import runner as resilient

#: Datasheet schema identifier + version (bump on shape changes).
DATASHEET_SCHEMA = "repro.datasheet"
DATASHEET_VERSION = 1


@dataclass(frozen=True)
class CharacterizeSettings:
    """Everything that defines a characterization sweep.

    Attributes
    ----------
    benchmark:
        Registry benchmark name (``max46`` / ``apla`` / ``t2`` /
        ``syn_*``) naming the function to characterize.
    techs:
        Technology specs, each a registry name or a descriptor-file
        path; the datasheet carries one entry per spec, in order.
    seed:
        Base seed for the LFSR power stream, the variation trials and
        the yield sweep.
    power_vectors:
        LFSR vectors simulated for the activity-dependent energy model.
    variation_trials:
        Monte Carlo samples of the parametric timing distribution.
    yield_samples:
        Monte Carlo samples per manufacturing-yield experiment.
    spares:
        ``(spare_rows, spare_cols)`` fabric redundancy points; the
        yield sweep runs once per technology per point.
    """

    benchmark: str
    techs: Tuple[str, ...] = ("flash", "eeprom", "cnfet")
    seed: int = 0
    power_vectors: int = 256
    variation_trials: int = 200
    yield_samples: int = 400
    spares: Tuple[Tuple[int, int], ...] = ((2, 1),)

    def __post_init__(self):
        if not self.techs:
            raise ValueError("need at least one technology")
        if min(self.power_vectors, self.variation_trials,
               self.yield_samples) < 1:
            raise ValueError("power_vectors, variation_trials and "
                             "yield_samples must all be >= 1")
        if not self.spares:
            raise ValueError("need at least one (spare_rows, spare_cols) "
                             "point")

    def to_json(self) -> Dict[str, Any]:
        """Canonically-JSON-serializable form (tuples become lists)."""
        return {
            "benchmark": self.benchmark,
            "techs": list(self.techs),
            "seed": self.seed,
            "power_vectors": self.power_vectors,
            "variation_trials": self.variation_trials,
            "yield_samples": self.yield_samples,
            "spares": [list(pair) for pair in self.spares],
        }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def run_characterize_cell(payload: dict) -> dict:
    """Worker entry point: one (technology, cell) unit of the sweep.

    ``payload``: ``{"settings": ..., "tech": spec, "cell": "models"}``
    for the area/delay/power/variation bundle, or
    ``{..., "cell": "yield", "spare_rows": R, "spare_cols": C}`` for
    one manufacturing-yield experiment.  Returns a JSON-shaped record.
    """
    from repro import tech as tech_mod

    settings = CharacterizeSettings(
        benchmark=payload["settings"]["benchmark"],
        techs=tuple(payload["settings"]["techs"]),
        seed=payload["settings"]["seed"],
        power_vectors=payload["settings"]["power_vectors"],
        variation_trials=payload["settings"]["variation_trials"],
        yield_samples=payload["settings"]["yield_samples"],
        spares=tuple(tuple(pair)
                     for pair in payload["settings"]["spares"]),
    )
    spec = payload["tech"]
    if payload["cell"] == "yield":
        return _yield_cell(settings, spec, payload["spare_rows"],
                           payload["spare_cols"])
    with tech_mod.use(spec) as descriptor:
        return _models_cell(settings, descriptor)


def _minimized(settings: CharacterizeSettings):
    """(function, minimized cover) of the benchmark, via the store."""
    from repro.bench.mcnc import benchmark_function, get_benchmark
    from repro.store.service import get_service

    function = benchmark_function(get_benchmark(settings.benchmark), seed=0)
    cover = get_service().minimize(function)
    return function, cover


def _models_cell(settings: CharacterizeSettings, descriptor) -> dict:
    """Area, delay, power and variation of the function on one tech."""
    from repro.core.area import pla_area, technology_from
    from repro.core.classical_pla import ClassicalPLA
    from repro.core.pla import AmbipolarPLA
    from repro.core.power import PLAPowerModel
    from repro.core.timing import PLATimingModel, TimingParameters
    from repro.core.variation import VariationModel, monte_carlo_cycle_time
    from repro.testgen.lfsr import GaloisLFSR

    _function, cover = _minimized(settings)
    dims = (cover.n_inputs, cover.n_outputs, cover.n_cubes())
    view = technology_from(descriptor)
    columns = view.input_columns(dims[0])

    timing = TimingParameters.from_tech(descriptor)
    model = PLATimingModel(dims[0], dims[1], dims[2], timing,
                           n_input_columns=columns)

    vectors = GaloisLFSR(dims[0], seed=settings.seed).vectors(
        settings.power_vectors)
    power_model = PLAPowerModel(timing)
    if descriptor.dual_input_columns:
        report = power_model.classical_energy(
            ClassicalPLA.from_cover(cover), vectors)
    else:
        report = power_model.gnor_energy(
            AmbipolarPLA.from_cover(cover), vectors)

    distribution = monte_carlo_cycle_time(
        dims[0], dims[1], dims[2], VariationModel.from_tech(descriptor),
        trials=settings.variation_trials, seed=settings.seed, base=timing,
        n_input_columns=columns)
    nominal = model.cycle_time()

    return {
        "tech": {"name": descriptor.name, "digest": descriptor.digest(),
                 "parameters": descriptor.to_json()},
        "array": {"inputs": dims[0], "outputs": dims[1],
                  "products": dims[2], "input_columns": columns},
        "area": {
            "total_l2": pla_area(descriptor, *dims),
            "cell_l2": descriptor.cell_area_l2,
        },
        "timing": {
            "evaluate_delay_ps": model.evaluate_delay() * 1e12,
            "cycle_time_ps": nominal * 1e12,
            "max_frequency_mhz": model.max_frequency() / 1e6,
        },
        "power": {
            "cycles": report.cycles,
            "energy_j": report.energy_j,
            "energy_per_cycle_j": report.energy_per_cycle(),
            "row_discharges": report.row_discharges,
            "column_discharges": report.column_discharges,
            "inverter_toggles": report.inverter_toggles,
        },
        "variation": {
            "trials": settings.variation_trials,
            "cycle_mean_ps": distribution.mean() * 1e12,
            "cycle_std_ps": distribution.std() * 1e12,
            "cycle_p95_ps": distribution.percentile(0.95) * 1e12,
            # yield against a 10 %-slack budget on the nominal cycle
            "timing_yield_10pct_slack": distribution.timing_yield(
                1.0 / (nominal * 1.1)),
        },
    }


def _yield_cell(settings: CharacterizeSettings, spec: str,
                spare_rows: int, spare_cols: int) -> dict:
    """One manufacturing-yield experiment (Wilson CIs included)."""
    from repro.robustness.yield_engine import YieldSettings, estimate_yield

    ysettings = YieldSettings(
        benchmark=settings.benchmark, samples=settings.yield_samples,
        seed=settings.seed, spare_rows=spare_rows, spare_cols=spare_cols,
        tech=spec)
    report = estimate_yield(ysettings, jobs=1)
    return {"tech": spec, "spare_rows": spare_rows,
            "spare_cols": spare_cols, "report": report.to_json()}


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
def characterize(settings: CharacterizeSettings, jobs: int = 1,
                 checkpoint: Optional[str] = None, resume: bool = False,
                 timeout: Optional[float] = None,
                 retries: int = 2) -> Dict[str, Any]:
    """Run the full sweep and return the datasheet dict.

    The datasheet is served through the content-addressed store (kind
    ``characterize``) keyed by the settings plus every technology's
    content digest, so repeated sweeps — and sweeps over renamed files
    with identical parameters — are cache hits.  ``checkpoint`` /
    ``resume`` give crash-resumable sweeps; the datasheet is
    bit-identical for any ``jobs`` value and across resumes.
    """
    from repro.analysis.export import validate_datasheet
    from repro.store.service import get_service
    from repro.tech import resolve_tech

    digests = [resolve_tech(spec).digest() for spec in settings.techs]
    request = {"settings": settings.to_json(), "tech_digests": digests}

    def compute() -> Dict[str, Any]:
        settings_json = settings.to_json()
        tasks = []
        for t, spec in enumerate(settings.techs):
            tasks.append((
                {"cell": "models", "tech": t},
                {"settings": settings_json, "tech": spec,
                 "cell": "models"}))
        for t, spec in enumerate(settings.techs):
            for rows, cols in settings.spares:
                tasks.append((
                    {"cell": "yield", "tech": t, "sr": rows, "sc": cols},
                    {"settings": settings_json, "tech": spec,
                     "cell": "yield", "spare_rows": rows,
                     "spare_cols": cols}))

        report = resilient.run_tasks(
            run_characterize_cell, tasks, jobs=jobs, timeout=timeout,
            retries=retries, checkpoint=checkpoint, resume=resume)
        report.raise_on_failure()
        return _assemble(settings, digests, report, [k for k, _p in tasks])

    datasheet = get_service().get_or_compute("characterize", request,
                                             compute)
    validate_datasheet(datasheet)
    return datasheet


def _assemble(settings: CharacterizeSettings, digests: List[str],
              report, keys: List[dict]) -> Dict[str, Any]:
    """Fold the runner's results into the datasheet, in task order."""
    results = report.values()
    by_key = {_key_id(key): results[i] for i, key in enumerate(keys)}

    function_block = None
    technologies = []
    yields = []
    for t, _spec in enumerate(settings.techs):
        cell = by_key[("models", t, None, None)]
        if function_block is None:
            function_block = {
                "name": settings.benchmark,
                "inputs": cell["array"]["inputs"],
                "outputs": cell["array"]["outputs"],
                "products": cell["array"]["products"],
            }
        technologies.append(cell)
    for t, _spec in enumerate(settings.techs):
        for rows, cols in settings.spares:
            yields.append(by_key[("yield", t, rows, cols)])

    return {
        "schema": DATASHEET_SCHEMA,
        "version": DATASHEET_VERSION,
        "settings": settings.to_json(),
        "tech_digests": digests,
        "function": function_block,
        "technologies": technologies,
        "yield": yields,
    }


def _key_id(key: dict) -> tuple:
    return (key["cell"], key["tech"], key.get("sr"), key.get("sc"))


__all__ = ["DATASHEET_SCHEMA", "DATASHEET_VERSION",
           "CharacterizeSettings", "characterize",
           "run_characterize_cell"]
