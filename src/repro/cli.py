"""Command-line interface: ``python -m repro <command>``.

Gives the library a tool-like surface over PLA files::

    python -m repro info design.pla          # dimensions & stats
    python -m repro minimize design.pla      # Espresso -> stdout (.pla)
    python -m repro area design.pla          # Table 1 areas + savings
    python -m repro simulate design.pla 1011 # evaluate vectors
    python -m repro map design.pla -o d.bit  # GNOR configuration bitstream
    python -m repro table1                   # reproduce Table 1
    python -m repro table2 --grid 8          # reproduce Table 2 (slow-ish)
    python -m repro cache stats              # artifact-store census

Expensive results (minimization, place-and-route, yield sweeps) are
served from a content-addressed artifact store under ``.repro/store``
(``REPRO_CACHE=off`` disables it; ``repro cache`` manages it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_area, format_percent, render_table
from repro.core.area import (CNFET_AMBIPOLAR, EEPROM, FLASH,
                             area_saving_percent, pla_area,
                             technology_from)
from repro.errors import ReproInputError
from repro.espresso import espresso
from repro.logic.function import BooleanFunction
from repro.logic.pla_format import parse_pla, write_pla
from repro.mapping.gnor_map import map_cover_to_gnor
from repro.tech import get_tech, names as tech_names, resolve_tech


def _load(path: str) -> BooleanFunction:
    with open(path) as handle:
        return parse_pla(handle, name=path)


def _default_checkpoint(kind: str, *parts: object) -> str:
    """Deterministic checkpoint path for resumable sweeps."""
    import os
    tag = "-".join(str(p) for p in parts)
    return os.path.join(".repro", f"{kind}-{tag}.ckpt.jsonl")


def _cmd_info(args) -> int:
    function = _load(args.file)
    stats = function.stats()
    rows = [[key, value] for key, value in stats.items()]
    rows.append(["dc cubes", function.dc_set.n_cubes()])
    print(render_table(["field", "value"], rows, title=f"PLA: {args.file}"))
    return 0


def _cmd_minimize(args) -> int:
    from repro.store.service import get_service
    function = _load(args.file)
    service = get_service()
    if args.phase:
        cover, phase_list = service.minimize(function, {"phase": True})
        phases = "".join("+" if p else "-" for p in phase_list)
        print(f"# phases: {phases}", file=sys.stderr)
    else:
        cover = service.minimize(function)
    minimized = BooleanFunction(cover, name=function.name,
                                input_labels=function.input_labels,
                                output_labels=function.output_labels)
    text = write_pla(minimized)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({cover.n_cubes()} products)",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_area(args) -> int:
    function = _load(args.file)
    cover = espresso(function).cover if args.minimize else function.on_set
    dims = (cover.n_inputs, cover.n_outputs, cover.n_cubes())
    lineup = [FLASH, EEPROM, CNFET_AMBIPOLAR]
    if args.tech:
        extra = technology_from(resolve_tech(args.tech))
        if extra.name not in [t.name for t in lineup]:
            lineup.append(extra)
    rows = []
    flash = pla_area(FLASH, *dims)
    for tech in lineup:
        area = pla_area(tech, *dims)
        rows.append([tech.name, format_area(area),
                     format_percent(area_saving_percent(area, flash))
                     if tech is not FLASH else "baseline"])
    print(render_table(["technology", "area (L^2)", "vs Flash"], rows,
                       title=f"{function.name}: I={dims[0]} O={dims[1]} "
                             f"P={dims[2]}"))
    return 0


def _cmd_simulate(args) -> int:
    function = _load(args.file)
    from repro.core.pla import AmbipolarPLA
    pla = AmbipolarPLA.from_cover(function.on_set)
    for vector_str in args.vectors:
        if len(vector_str) != function.n_inputs or \
                any(ch not in "01" for ch in vector_str):
            print(f"bad vector {vector_str!r}: need {function.n_inputs} "
                  f"bits of 0/1", file=sys.stderr)
            return 2
        vector = [int(ch) for ch in vector_str]
        outputs = "".join(str(bit) for bit in pla.evaluate(vector))
        print(f"{vector_str} -> {outputs}")
    return 0


def _cmd_map(args) -> int:
    from repro.fpga.bitstream import serialize_pla
    function = _load(args.file)
    cover = espresso(function).cover if args.minimize else function.on_set
    config = map_cover_to_gnor(cover)
    data = serialize_pla(config)
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"wrote {args.output}: {len(data)} bytes for "
          f"{config.total_devices()} devices "
          f"({config.used_devices()} programmed)", file=sys.stderr)
    return 0


def _cmd_table1(args) -> int:
    from repro.bench.mcnc import TABLE1_BENCHMARKS
    lineup = [FLASH, EEPROM, CNFET_AMBIPOLAR]
    headers = ["", "Flash", "EEPROM", "CNFET"]
    if getattr(args, "tech", None):
        extra = technology_from(resolve_tech(args.tech))
        if extra.name not in headers:
            lineup.append(extra)
            headers.append(extra.name)
    rows = [["Basic cell (L2)"] + [format_area(t.cell_area_l2)
                                   for t in lineup]]
    for stats in TABLE1_BENCHMARKS:
        dims = (stats.inputs, stats.outputs, stats.products)
        rows.append([f"{stats.name} (L2)"] +
                    [format_area(pla_area(t, *dims)) for t in lineup])
    print(render_table(headers, rows,
                       title=f"Table 1: Area of logic functions in "
                             f"{len(lineup)} technologies"))
    return 0


def _cmd_table2(args) -> int:
    from repro.fpga.emulate import run_emulation
    report = run_emulation(seed=args.seed, grid_side=args.grid,
                           jobs=args.jobs)
    rows = [list(row) for row in report.table_rows()]
    print(render_table(["", "Standard FPGA", "CNFET FPGA"], rows,
                       title="Table 2: Frequency of standard FPGA and "
                             "CNFET FPGA"))
    print(f"frequency gain: {report.frequency_gain:.2f}x")
    return 0


def _cmd_fsm(args) -> int:
    from repro.fsm import (binary_encoding, gray_encoding, one_hot_encoding,
                           synthesize_fsm)
    from repro.fsm.kiss import parse_kiss
    with open(args.file) as handle:
        fsm = parse_kiss(handle, name=args.file)
    encoders = {"binary": binary_encoding, "gray": gray_encoding,
                "one-hot": one_hot_encoding}
    encoder = encoders[args.encoding]
    synth = synthesize_fsm(fsm, encoder(fsm.states))
    pla = synth.pla
    rows = [
        ["states", len(fsm.states)],
        ["transitions", len(fsm.transitions)],
        ["encoding", args.encoding],
        ["state bits", synth.encoding.n_bits],
        ["products", pla.n_products],
        ["array", f"{pla.n_products}x{pla.n_columns()}"],
        ["CNFET area (L^2)",
         format_area(pla_area(CNFET_AMBIPOLAR, pla.n_inputs, pla.n_outputs,
                              pla.n_products))],
    ]
    print(render_table(["field", "value"], rows,
                       title=f"FSM synthesis: {fsm.name}"))
    if args.output:
        from repro.logic.pla_format import write_pla
        logic = BooleanFunction(synth.cover, name=f"{fsm.name}.logic")
        with open(args.output, "w") as handle:
            handle.write(write_pla(logic))
        print(f"wrote combinational logic to {args.output}",
              file=sys.stderr)
    return 0


def _cmd_atpg(args) -> int:
    from repro.testgen.atpg import deterministic_tests
    function = _load(args.file)
    cover = espresso(function).cover if args.minimize else function.on_set
    config = map_cover_to_gnor(cover)
    result = deterministic_tests(config)
    n_faults = len(result.detected) + len(result.undetected)
    rows = [
        ["array", f"{config.n_products}x"
                  f"{config.n_inputs + config.n_outputs}"],
        ["single faults", n_faults],
        ["tests", result.n_tests()],
        ["coverage", f"{result.coverage:.1%}"],
        ["redundant faults", len(result.undetected)],
    ]
    print(render_table(["field", "value"], rows,
                       title=f"ATPG: {function.name}"))
    if args.output:
        with open(args.output, "w") as handle:
            for test in result.tests:
                handle.write("".join(str(bit) for bit in test) + "\n")
        print(f"wrote {result.n_tests()} test vectors to {args.output}",
              file=sys.stderr)
    return 0


def _cmd_suite(args) -> int:
    from repro.bench.suite import (evaluate_suite, render_suite, suite_csv)
    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = _default_checkpoint("suite", args.seed)
    entries = evaluate_suite(seed=args.seed, jobs=args.jobs,
                             retries=args.retries, checkpoint=checkpoint,
                             resume=args.resume)
    print(render_suite(entries))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(suite_csv(entries))
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.verify:
        from repro.bench.suite import verify_suite
        verdicts = verify_suite(seed=args.seed)
        failed = sorted(name for name, ok in verdicts.items() if not ok)
        print(f"mapping equivalence (LFSR BIST): "
              f"{len(verdicts) - len(failed)}/{len(verdicts)} verified"
              + (f"; FAILED: {', '.join(failed)}" if failed else ""))
        if failed:
            return 1
    return 0


def _cmd_yield(args) -> int:
    import json
    from repro.robustness.yield_engine import YieldSettings, estimate_yield
    from repro.bench.mcnc import get_benchmark
    try:
        get_benchmark(args.benchmark)
    except KeyError as exc:
        raise ReproInputError(str(exc.args[0]))
    if args.rate is not None:
        p_off, p_on = args.rate * 0.7, args.rate * 0.3
    else:
        p_off, p_on = args.p_stuck_off, args.p_stuck_on
    settings = YieldSettings(
        benchmark=args.benchmark, samples=args.samples, seed=args.seed,
        p_stuck_off=p_off, p_stuck_on=p_on, spare_rows=args.spare_rows,
        spare_cols=args.spare_cols, correlated=args.correlated,
        reminimize=not args.no_reminimize)
    checkpoint = args.checkpoint or _default_checkpoint(
        "yield", args.benchmark, args.samples, args.seed)
    report = estimate_yield(settings, jobs=args.jobs,
                            checkpoint=checkpoint, resume=args.resume,
                            retries=args.retries)
    data = report.to_json()
    raw_lo, raw_hi = data["raw_ci95"]
    rep_lo, rep_hi = data["repaired_ci95"]
    rows = [
        ["array", f"{report.n_products}x"
                  f"{report.n_inputs + report.n_outputs} "
                  f"(+{settings.spare_rows} rows, "
                  f"+{settings.spare_cols} cols)"],
        ["samples", report.samples],
        ["defect rates", f"off={settings.p_stuck_off:g} "
                         f"on={settings.p_stuck_on:g}"
                         + (" (row-correlated)" if settings.correlated
                            else "")],
        ["mean defects/array", f"{data['mean_defects_per_array']:.2f}"],
        ["raw yield", f"{report.raw_yield:.4f}  "
                      f"[{raw_lo:.4f}, {raw_hi:.4f}]"],
        ["repaired yield", f"{report.repaired_yield:.4f}  "
                           f"[{rep_lo:.4f}, {rep_hi:.4f}]"],
        ["repair statuses", " ".join(f"{k}={v}" for k, v in
                                     sorted(report.status_counts.items()))],
        ["irreparable", data["irreparable"]],
        ["degraded correctness",
         f"mean={data['degraded_mean_correct']:.6f} "
         f"worst={data['degraded_worst_correct']:.6f}"],
    ]
    print(render_table(["field", "value"], rows,
                       title=f"Manufacturing yield: {args.benchmark} "
                             f"(seed {args.seed})"))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _write_json(path: str, data) -> None:
    """Dump ``data`` to ``path`` (``-`` = stdout) as sorted JSON."""
    import json
    if path == "-":
        json.dump(data, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}", file=sys.stderr)


def _cmd_cache(args) -> int:
    import json
    from repro.store import ArtifactStore, default_root
    store = ArtifactStore(args.dir or default_root())
    action = args.action
    if action == "stats":
        stats = store.stats()
        if args.json:
            # machine-readable: the serve load generator and CI scrape
            # hit/miss/coalesce/gc counters from here
            _write_json(args.json, stats)
            return 0
        cap = stats["disk_capacity"]
        rows = [
            ["root", stats["root"]],
            ["entries", stats["entries"]],
            ["bytes", stats["bytes"]],
            ["disk cap", cap if cap is not None else "(unbounded)"],
            ["quarantined", f"{stats['quarantined']} entries / "
                            f"{stats['quarantine_bytes']} B "
                            f"(cap {stats['quarantine_capacity']})"],
        ]
        for kind, info in sorted(stats["kinds"].items()):
            rows.append([f"kind: {kind}",
                         f"{info['entries']} entries / {info['bytes']} B"])
        print(render_table(["field", "value"], rows,
                           title="Artifact store"))
    elif action == "ls":
        entries = store.entries()
        if not entries:
            print("(store is empty)")
        else:
            rows = [[e["key"][:16], e["kind"], e["backend"], e["bytes"]]
                    for e in entries]
            print(render_table(["key", "kind", "backend", "bytes"], rows,
                               title=f"{len(entries)} artifacts in "
                                     f"{store.root}"))
    elif action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
    elif action == "gc":
        max_bytes = args.max_bytes
        if max_bytes is None and store.disk_bytes is None:
            print("no cap: pass --max-bytes N or set "
                  "REPRO_CACHE_DISK_BYTES", file=sys.stderr)
            return 2
        result = store.gc(max_bytes)
        print(f"evicted {result['evicted']} artifacts "
              f"({result['freed_bytes']} B); {result['bytes']} B remain "
              f"in {store.root}")
    elif action == "verify":
        result = store.verify()
        print(f"verified {store.root}: {result['ok']} ok, "
              f"{result['corrupt']} corrupt (quarantined)", file=sys.stderr)
        if args.json:
            _write_json(args.json, result)
        return 1 if result["corrupt"] else 0
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    from repro.serve.server import ServeConfig, SynthesisServer

    if args.faults:
        # arm failpoints before any worker forks so the schedule
        # reaches worker processes through the environment
        from repro import faults
        from repro.faults.chaos import quiet_asyncio_log
        faults.install(args.faults, args.faults_seed)
        # injected resets make the loop write into aborted sockets by
        # design; without this the asyncio logger floods stderr
        quiet_asyncio_log()
        print(f"fault injection armed: {args.faults!r} "
              f"(seed {args.faults_seed})", file=sys.stderr)

    overrides = {"host": args.host, "port": args.port}
    if args.batch is not None:
        overrides["max_batch"] = args.batch
    if args.linger_us is not None:
        overrides["linger_us"] = args.linger_us
    if args.queue is not None:
        overrides["queue_limit"] = args.queue
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    config = ServeConfig.from_env(**overrides)
    server = SynthesisServer(config)

    if args.stdio:
        # pipe mode: same protocol over stdin/stdout (tests, SSH, inetd)
        asyncio.run(server.serve_stdio())
        return 0

    def ready(host: str, port: int) -> None:
        import os
        print(f"serving on {host}:{port} (pid {os.getpid()}, "
              f"batch={config.max_batch}, linger={config.linger_us}us, "
              f"queue={config.queue_limit})", file=sys.stderr, flush=True)

    try:
        asyncio.run(server.run_tcp(ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    from repro import perf
    snapshot = perf.snapshot()
    served = {name: entry for name, entry in snapshot["timers"].items()
              if name.startswith("serve.request.")}
    for name, entry in sorted(served.items()):
        print(f"{name}: {entry['calls']} requests, "
              f"p50={entry.get('p50_ms', 0.0):.3f}ms "
              f"p99={entry.get('p99_ms', 0.0):.3f}ms", file=sys.stderr)
    print("drained cleanly", file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults.chaos import (ChaosSettings, quiet_asyncio_log,
                                    run_chaos)

    quiet_asyncio_log()
    overrides = {}
    if args.store_faults is not None:
        overrides["store_faults"] = args.store_faults
    if args.serve_faults is not None:
        overrides["serve_faults"] = args.serve_faults
    settings = ChaosSettings(seed=args.seed, store_ops=args.store_ops,
                             requests=args.requests, clients=args.clients,
                             jobs=args.jobs, **overrides)
    soak = run_chaos(settings)
    store, serve = soak["store"], soak["serve"]
    rows = [
        ["fault keys", f"store {soak['fault_keys']['store'][:16]} / "
                       f"serve {soak['fault_keys']['serve'][:16]}"],
        ["injected", f"{soak['injected']}/{soak['checked']} checks "
                     f"({soak['injected_rate']:.1%})"],
        ["store segment", f"{store['completed']}/{store['ops']} ops, "
                          f"{store['mismatches']} mismatches, "
                          f"{store['quarantined']} quarantined"],
        ["serve segment", f"{serve['completed']}/{serve['requests']} "
                          f"completed, {serve['hangs']} hangs, "
                          f"{serve['mismatches']} mismatches"],
        ["errors", " ".join(f"{k}={v}" for k, v in
                            sorted(serve["error_codes"].items())) or "none"],
        ["p99", f"oracle {serve['oracle_p99_ms']:.1f}ms -> faulted "
                f"{serve['faulted_p99_ms']:.1f}ms "
                f"(x{soak['p99_ratio']:.1f})"],
        ["verdict", "OK" if soak["ok"] else "NOT OK"],
    ]
    print(render_table(["field", "value"], rows,
                       title=f"Chaos soak (seed {soak['seed']}, "
                             f"wall {soak['wall_s']:.1f}s)"))
    if args.json:
        _write_json(args.json, soak)
    return 0 if soak["ok"] else 1


def _cmd_tech(args) -> int:
    from repro.tech import ALIASES, BUILTIN
    if args.action == "ls":
        rows = []
        for name in sorted(BUILTIN):
            d = BUILTIN[name]
            aliases = sorted(a for a, target in ALIASES.items()
                             if target == name)
            rows.append([name, format_area(d.cell_area_l2),
                         "2I" if d.dual_input_columns else "I",
                         d.digest()[:12],
                         ", ".join(aliases) or "-"])
        if args.json:
            _write_json(args.json, {
                name: BUILTIN[name].to_json() for name in sorted(BUILTIN)})
            return 0
        print(render_table(
            ["name", "cell (L^2)", "input cols", "digest", "aliases"],
            rows, title="Technology registry (REPRO_TECH / --tech also "
                        "take a .json/.toml descriptor path)"))
        return 0
    # show
    if not args.name:
        print("error: tech show needs a NAME (registry name or "
              "descriptor path)", file=sys.stderr)
        return 2
    descriptor = resolve_tech(args.name)
    if args.json:
        data = descriptor.to_json()
        data["digest"] = descriptor.digest()
        _write_json(args.json, data)
        return 0
    rows = [["digest", descriptor.digest()]]
    for key, value in sorted(descriptor.to_json().items()):
        if key != "name":
            rows.append([key, value])
    print(render_table(["parameter", "value"], rows,
                       title=f"Technology: {descriptor.name}"))
    return 0


def _cmd_characterize(args) -> int:
    from repro.analysis.characterize import (CharacterizeSettings,
                                             characterize)
    from repro.analysis.export import write_datasheet
    from repro.bench.mcnc import get_benchmark
    if (args.benchmark is None) == (args.cell is None):
        raise ReproInputError(
            "pass exactly one of --benchmark or --cell")
    if args.cell is not None:
        from repro import workloads
        args.benchmark = workloads.PREFIX \
            + workloads.strip_prefix(args.cell)
    try:
        get_benchmark(args.benchmark)
    except KeyError as exc:
        raise ReproInputError(str(exc.args[0]))
    techs = tuple(args.tech) if args.tech else ("flash", "eeprom", "cnfet")
    for spec in techs:
        resolve_tech(spec)  # fail fast on unknown specs, pre-sweep
    spares = []
    for spec in (args.spares or ["2,1"]):
        try:
            rows_str, cols_str = spec.split(",")
            spares.append((int(rows_str), int(cols_str)))
        except ValueError:
            raise ReproInputError(
                f"bad --spares {spec!r} (expected ROWS,COLS)")
    settings = CharacterizeSettings(
        benchmark=args.benchmark, techs=techs, seed=args.seed,
        power_vectors=args.power_vectors,
        variation_trials=args.variation_trials,
        yield_samples=args.yield_samples, spares=tuple(spares))
    checkpoint = args.checkpoint or _default_checkpoint(
        "characterize", args.benchmark.replace(":", "_"), len(techs),
        args.seed)
    datasheet = characterize(settings, jobs=args.jobs,
                             checkpoint=checkpoint, resume=args.resume,
                             retries=args.retries)

    fn = datasheet["function"]
    rows = []
    for entry in datasheet["technologies"]:
        rows.append([
            entry["tech"]["name"],
            format_area(entry["area"]["total_l2"]),
            f"{entry['timing']['cycle_time_ps']:.1f}",
            f"{entry['power']['energy_per_cycle_j']:.3e}",
            f"{entry['variation']['cycle_p95_ps']:.1f}",
        ])
    print(render_table(
        ["technology", "area (L^2)", "cycle (ps)", "E/cycle (J)",
         "p95 cycle (ps)"],
        rows, title=f"Characterization: {fn['name']} I={fn['inputs']} "
                    f"O={fn['outputs']} P={fn['products']}"))
    yrows = []
    for entry in datasheet["yield"]:
        report = entry["report"]
        lo, hi = report["repaired_ci95"]
        yrows.append([
            entry["tech"], f"+{entry['spare_rows']}r/+{entry['spare_cols']}c",
            f"{report['raw_yield']:.4f}",
            f"{report['repaired_yield']:.4f} [{lo:.4f}, {hi:.4f}]",
        ])
    print(render_table(
        ["technology", "spares", "raw yield", "repaired yield [ci95]"],
        yrows, title=f"Manufacturing yield ({settings.yield_samples} "
                     f"samples, seed {settings.seed})"))
    if args.output:
        path = write_datasheet(args.output, datasheet)
        print(f"wrote datasheet {path}", file=sys.stderr)
    return 0


def _cmd_workload(args) -> int:
    from repro import workloads

    if args.action == "ls":
        rows = []
        for info in workloads.list_workloads():
            if info["family"] == "clf":
                detail = f"{info['dataset']} x {info['algorithm']}"
            else:
                detail = f"width {info['width']}"
            rows.append([info["spec"], info["family"], detail])
        print(render_table(["spec", "family", "detail"], rows,
                           title="Workload registry (generators accept "
                                 "any in-range width)"))
        if args.json:
            _write_json(args.json, {"workloads": workloads.list_workloads()})
        return 0

    if args.spec is None:
        raise ReproInputError(f"workload {args.action} needs a spec "
                              f"(see `repro workload ls`)")
    spec = workloads.strip_prefix(args.spec)
    workloads.parse_workload(spec)
    if args.action == "build":
        raw = workloads.raw_function(spec)
        compiled = workloads.workload_function(spec)
        rows = [["inputs", compiled.n_inputs],
                ["outputs", compiled.n_outputs],
                ["raw products", raw.on_set.n_cubes()],
                ["products", compiled.on_set.n_cubes()],
                ["literals", compiled.on_set.n_literals()],
                ["model digest", workloads.model_digest(spec)[:16]]]
        print(render_table(["field", "value"], rows,
                           title=f"Workload: {compiled.name}"))
        if args.output:
            from repro.logic.pla_format import write_pla
            with open(args.output, "w") as handle:
                handle.write(write_pla(compiled))
            print(f"wrote {args.output}", file=sys.stderr)
        return 0

    if args.action == "eval":
        from repro.store.service import get_service
        from repro.testgen.lfsr import stream_minterms, stream_spec

        compiled = workloads.workload_function(spec)
        stream = stream_spec(max(2, compiled.n_inputs), args.words,
                             seed=args.seed)
        masks = get_service().evaluate_batch([compiled.on_set],
                                             stream=stream)[0]
        mismatches = sum(
            1 for minterm, mask in zip(stream_minterms(stream), masks)
            if mask != workloads.oracle_mask(spec, minterm))
        print(f"{compiled.name}: {args.words * 64} vectors, "
              f"{mismatches} oracle mismatches")
        info = workloads.parse_workload(spec)
        if info["family"] == "clf":
            from repro.workloads import datasets
            dataset = datasets.get_dataset(info["dataset"])
            rows_stream = datasets.dataset_stream_spec(dataset.name)
            row_masks = get_service().evaluate_batch(
                [compiled.on_set], stream=rows_stream)[0]
            model = workloads._model_of(spec)
            disagree = sum(
                1 for (x, _y), mask in zip(dataset.rows, row_masks)
                if mask != model.predict(x))
            print(f"{dataset.name}: {len(dataset.rows)} rows, "
                  f"{disagree} model disagreements")
            mismatches += disagree
        return 0 if mismatches == 0 else 1

    # action == "curve"
    from repro.analysis.export import write_curve_report
    from repro.workloads.curves import CurveSettings, run_curve

    techs = tuple(args.tech) if args.tech else ("cnfet",)
    rates = tuple(args.rate) if args.rate else (0.0005, 0.001, 0.002,
                                                0.004)
    try:
        settings = CurveSettings(spec=spec, techs=techs, rates=rates,
                                 samples=args.samples, seed=args.seed,
                                 stream_words=args.words)
    except ValueError as exc:
        raise ReproInputError(str(exc))
    report = run_curve(settings, jobs=args.jobs)
    fn = report["function"]
    title = (f"Curve: {fn['name']} I={fn['inputs']} O={fn['outputs']} "
             f"P={fn['products']} ({settings.samples} samples/point)")
    rows = []
    for point in report["points"]:
        acc = point["accuracy"]
        lo, hi = point["yield"]["repaired_ci95"]
        if "expected_accuracy" in acc:
            alo, ahi = acc["expected_accuracy_ci95"]
            last = f"{acc['expected_accuracy']:.4f} [{alo:.4f}, {ahi:.4f}]"
        else:
            last = f"{acc['expected_correct_fraction']:.4f}"
        rows.append([f"{point['p_stuck_off']:g}",
                     f"{point['yield']['raw_yield']:.4f}",
                     f"{point['yield']['repaired_yield']:.4f} "
                     f"[{lo:.4f}, {hi:.4f}]", last])
    print(render_table(
        ["p_stuck_off", "raw yield", "repaired yield [ci95]",
         "expected accuracy" if "dataset" in report["clean"]
         else "expected correct"], rows, title=title))
    arows = [[entry["tech"], format_area(entry["area_l2"])]
             for entry in report["technologies"]]
    print(render_table(["technology", "area (L^2)"], arows,
                       title="Compiled array area"))
    if args.output:
        path = write_curve_report(args.output, report)
        print(f"wrote curve report {path}", file=sys.stderr)
    return 0


#: Performance knobs, shown in ``repro --help`` and mirrored in the
#: README "Performance" section (keep the two in sync).
PERFORMANCE_EPILOG = """\
technology:
  REPRO_TECH=NAME|FILE
        the technology descriptor every model constant derives from:
        a registry name (`repro tech ls`: flash, eeprom, cnfet) or a
        path to a JSON/TOML descriptor file; commands accepting
        --tech override it per invocation.  Artifact-store keys
        include the descriptor's content digest, so two technologies
        never share cached results
  repro tech ls|show NAME
        census of the built-in registry / resolved parameters +
        content digest of one descriptor (both take --json)
  repro characterize --benchmark B [--tech SPEC]...
        sweep one benchmark across technologies (minimize -> map ->
        area/delay/power -> variation + manufacturing yield with
        Wilson CIs) on the resilient runner; -o FILE exports the
        schema-versioned machine-readable datasheet

workloads:
  repro workload ls
        census of the generated-cell registry: parameterized adders /
        comparators / popcounts (any in-range width) and classifiers
        compiled from deterministically trained threshold and
        decision-list models on the bundled datasets
  repro workload build|eval SPEC
        compile one cell through minimize -> map (build; -o FILE
        exports the cover as .pla) or differentially check it against
        its integer-arithmetic / direct-model oracle on an LFSR
        stream (eval; nonzero exit on any mismatch)
  repro workload curve SPEC [--rate R]... [--tech T]...
        accuracy-vs-area/defect-rate analysis: clean accuracy on the
        batched evaluation arena, then one Monte Carlo yield
        experiment per defect rate with Wilson CIs projected onto the
        accuracy axis; -o FILE exports the schema-versioned curve
        report (served through the artifact store, so re-runs are
        cache hits)
  repro characterize --cell SPEC
        full datasheet of a workload cell (same sweep as --benchmark)

performance:
  REPRO_KERNEL=numpy|python|auto
        backend for the bit-sliced evaluation kernels, the
        cover-matrix cube algebra and the array-backed FPGA grid
        engine — `repro table2` places and routes on the selected
        backend (default: auto — NumPy when importable, scalar Python
        otherwise; results are identical either way)
  REPRO_EVAL_BATCH=off
        disable the batched evaluation arena (repro.eval): the yield
        engine and `suite --verify` then walk the per-cover kernel /
        scalar paths instead (bit-identical results, just slower)
  --jobs N
        `suite`, `yield` and `table2` accept parallel worker processes
        (crash-isolated, retried, see repro.runner); results are
        identical for any job count

robustness:
  REPRO_TASK_TIMEOUT=SECONDS
        per-task wall-clock limit for parallel runs; a worker past the
        limit is recycled and the task retried
  --checkpoint FILE / --resume
        `suite` and `yield` checkpoint completed tasks to a JSONL
        file; --resume after a crash reuses them and yields a
        bit-identical final report

caching:
  REPRO_CACHE=off
        disable the content-addressed artifact store; every command
        recomputes from scratch (results are bit-identical either way)
  REPRO_CACHE_DIR=PATH
        store root (default .repro/store); entries are keyed by
        inputs + config + REPRO_KERNEL backend + schema version, so
        backends and incompatible versions never share artifacts
  REPRO_CACHE_MEM=N
        in-memory LRU entries layered over the disk tier (default 128)
  REPRO_CACHE_DISK_BYTES=N
        cap the disk tier: every put opportunistically evicts
        oldest-access-first down to N bytes (disk hits refresh the
        access stamp; locked-in-use entries are skipped)
  repro cache stats|ls|clear|verify|gc
        inspect, list, wipe, digest-check or shrink the store;
        `verify` quarantines corrupt entries (they also read as
        misses), `gc --max-bytes N` evicts down to a one-off cap;
        `stats --json [FILE]` emits machine-readable counters

serving:
  repro serve [--port N | --stdio]
        newline-delimited JSON endpoints (minimize, place_route,
        evaluate, evaluate_batch, yield_run, stats) over the caching
        synthesis service; SIGINT/SIGTERM drains gracefully
  REPRO_SERVE_BATCH=N
        evaluate micro-batch size (default 64): concurrent single-
        cover requests aggregate into one batch-arena pass; 1
        disables aggregation (per-request serving)
  REPRO_SERVE_LINGER_US=N
        max microseconds an evaluate request waits for batch-mates
        (default 1000); under load batches fill before the timer
  REPRO_SERVE_QUEUE=N
        admission budget (default 256): requests beyond it are shed
        immediately with an `overloaded` reply instead of queueing
  REPRO_SERVE_JOBS=N
        warm worker processes behind the server (default: cpu count);
        workers stay alive across requests — no per-call pool spin-up
  REPRO_MP_START=fork|forkserver|spawn
        worker-pool start method (default fork: copy-on-write page
        sharing with the parent is worth a lot of throughput on small
        hosts); forkserver gives workers clean descriptor tables at
        the cost of private pages

fault injection (testing only):
  REPRO_FAULTS="site:kind@arm[,key=value][;...]"
        arm deterministic failpoints (repro.faults); arms are a
        probability in (0,1], `after=N` (fire on the Nth check) or
        `every=N`. Sites: store.disk_write (torn|io_error),
        store.fsync (io_error), store.disk_read (corrupt),
        store.lock (stall), store.publish (hang|crash),
        worker.task (crash|hang), worker.result (poison),
        serve.conn (reset), serve.flush (delay), serve.overload
        (force). Example:
        REPRO_FAULTS="store.disk_read:corrupt@0.05;worker.task:crash@0.02"
  REPRO_FAULTS_SEED=N
        failpoint RNG seed (default 0); (seed, spec) fully determines
        the schedule — FaultPlan.key() content-addresses it
  repro chaos [--seed N] [--json]
        the seeded chaos soak: a store segment and a serve segment
        under the default fault diet, gated on zero hangs and byte
        identity vs fault-free oracle runs (`repro serve --faults
        SPEC` arms failpoints on a live server instead)
"""


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ambipolar-CNFET PLA toolkit (DAC 2008 reproduction)",
        epilog=PERFORMANCE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print a PLA file's statistics")
    p.add_argument("file")
    p.set_defaults(handler=_cmd_info)

    p = sub.add_parser("minimize", help="Espresso-minimize a PLA file")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="write result here (default stdout)")
    p.add_argument("--phase", action="store_true",
                   help="also assign output phases (free on GNOR PLAs)")
    p.set_defaults(handler=_cmd_minimize)

    p = sub.add_parser("area", help="Table 1 areas of a PLA file")
    p.add_argument("file")
    p.add_argument("--minimize", action="store_true",
                   help="minimize before measuring")
    p.add_argument("--tech", default=None, metavar="SPEC",
                   help="also show this technology (registry name or "
                        "descriptor path)")
    p.set_defaults(handler=_cmd_area)

    p = sub.add_parser("simulate", help="evaluate input vectors")
    p.add_argument("file")
    p.add_argument("vectors", nargs="+", metavar="VECTOR",
                   help="input bits, e.g. 1011")
    p.set_defaults(handler=_cmd_simulate)

    p = sub.add_parser("map", help="emit a GNOR configuration bitstream")
    p.add_argument("file")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--minimize", action="store_true")
    p.set_defaults(handler=_cmd_map)

    p = sub.add_parser("fsm", help="synthesize a KISS2 FSM onto a GNOR PLA")
    p.add_argument("file")
    p.add_argument("--encoding", choices=("binary", "gray", "one-hot"),
                   default="binary")
    p.add_argument("-o", "--output",
                   help="write the combinational logic as a .pla file")
    p.set_defaults(handler=_cmd_fsm)

    p = sub.add_parser("atpg", help="deterministic test generation for a "
                                    "programmed PLA")
    p.add_argument("file")
    p.add_argument("--minimize", action="store_true")
    p.add_argument("-o", "--output", help="write test vectors here")
    p.set_defaults(handler=_cmd_atpg)

    p = sub.add_parser("suite", help="evaluate the whole benchmark registry")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (default 1; results are "
                        "identical for any job count)")
    p.add_argument("--csv", help="also export the rows as CSV")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per benchmark (default 2)")
    p.add_argument("--checkpoint", help="JSONL checkpoint file (default: "
                                        ".repro/suite-<seed>.ckpt.jsonl "
                                        "when --resume is given)")
    p.add_argument("--resume", action="store_true",
                   help="skip benchmarks already in the checkpoint")
    p.add_argument("--verify", action="store_true",
                   help="also BIST-check every GNOR mapping against its "
                        "cover on a shared LFSR vector stream")
    p.set_defaults(handler=_cmd_suite)

    p = sub.add_parser("yield", help="Monte Carlo manufacturing yield of a "
                                     "benchmark's GNOR fabric, with "
                                     "spare-aware repair")
    p.add_argument("--benchmark", required=True,
                   help="registry benchmark name (max46, apla, t2, syn_*)")
    p.add_argument("--samples", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rate", type=float, default=None,
                   help="total per-device defect rate, split 70/30 into "
                        "stuck-off/stuck-on (overrides --p-stuck-*)")
    p.add_argument("--p-stuck-off", type=float, default=0.0014)
    p.add_argument("--p-stuck-on", type=float, default=0.0006)
    p.add_argument("--spare-rows", type=int, default=2,
                   help="spare product rows for repair (default 2)")
    p.add_argument("--spare-cols", type=int, default=1,
                   help="spare input columns for repair (default 1)")
    p.add_argument("--correlated", action="store_true",
                   help="cluster defects along tube rows")
    p.add_argument("--no-reminimize", action="store_true",
                   help="disable the EXPAND/IRREDUNDANT repair fallback")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (default 1; the report "
                        "is identical for any job count)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per sample chunk (default 2)")
    p.add_argument("--checkpoint",
                   help="JSONL checkpoint file (default: "
                        ".repro/yield-<bench>-<samples>-<seed>.ckpt.jsonl)")
    p.add_argument("--resume", action="store_true",
                   help="reuse chunks checkpointed by an interrupted run; "
                        "the final report is bit-identical")
    p.add_argument("--json", help="also write the report as JSON")
    p.set_defaults(handler=_cmd_yield)

    p = sub.add_parser("cache", help="inspect / manage the artifact store")
    p.add_argument("action", choices=("stats", "ls", "clear", "verify",
                                      "gc"),
                   help="stats: census + counters; ls: list entries; "
                        "clear: delete all entries; verify: digest-check "
                        "and quarantine corrupt entries; gc: evict "
                        "oldest-access-first down to the byte cap")
    p.add_argument("--dir", help="store root (default: REPRO_CACHE_DIR "
                                 "or .repro/store)")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="stats/verify: write the result as JSON to FILE "
                        "(bare --json = stdout) for load generators and "
                        "CI to scrape")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="gc: disk-tier byte cap (default: "
                        "REPRO_CACHE_DISK_BYTES)")
    p.set_defaults(handler=_cmd_cache)

    p = sub.add_parser("serve", help="serve synthesis over newline-"
                                     "delimited JSON (TCP or stdio)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7929,
                   help="TCP port (0 = ephemeral; the bound port is "
                        "printed on stderr)")
    p.add_argument("--stdio", action="store_true",
                   help="serve one session over stdin/stdout instead "
                        "of TCP")
    p.add_argument("--jobs", type=int, default=None,
                   help="warm worker processes (default: "
                        "REPRO_SERVE_JOBS or cpu count)")
    p.add_argument("--batch", type=int, default=None,
                   help="evaluate micro-batch size (default: "
                        "REPRO_SERVE_BATCH or 64)")
    p.add_argument("--linger-us", type=int, default=None,
                   help="micro-batch linger in microseconds (default: "
                        "REPRO_SERVE_LINGER_US or 1000)")
    p.add_argument("--queue", type=int, default=None,
                   help="admission budget before load-shedding "
                        "(default: REPRO_SERVE_QUEUE or 256)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="arm deterministic failpoints for this server "
                        "(spec grammar: site:kind@arm[,k=v][;...], see "
                        "the fault-injection epilog); equivalent to "
                        "REPRO_FAULTS=SPEC")
    p.add_argument("--faults-seed", type=int, default=0,
                   help="failpoint RNG seed (default 0)")
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser("chaos", help="run the seeded chaos soak against "
                                     "the store and serving stack")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--store-ops", type=int, default=80,
                   help="store-segment operations (default 80)")
    p.add_argument("--requests", type=int, default=160,
                   help="serve-segment requests (default 160)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent pipelined connections (default 4)")
    p.add_argument("--jobs", type=int, default=2,
                   help="warm worker processes (default 2)")
    p.add_argument("--store-faults", default=None, metavar="SPEC",
                   help="override the store-segment fault schedule")
    p.add_argument("--serve-faults", default=None, metavar="SPEC",
                   help="override the serve-segment fault schedule")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="write the full soak record as JSON to FILE "
                        "(bare --json = stdout)")
    p.set_defaults(handler=_cmd_chaos)

    p = sub.add_parser("tech", help="list / inspect technology descriptors")
    p.add_argument("action", choices=("ls", "show"),
                   help="ls: registry census; show: resolved parameters "
                        "+ content digest of one descriptor")
    p.add_argument("name", nargs="?", default=None,
                   help="show: registry name, alias, or a .json/.toml "
                        "descriptor file path")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="emit machine-readable JSON to FILE (bare "
                        "--json = stdout)")
    p.set_defaults(handler=_cmd_tech)

    p = sub.add_parser("characterize",
                       help="sweep one benchmark across technologies: "
                            "area/delay/power/variation + Monte Carlo "
                            "yield, emitting a machine-readable datasheet")
    p.add_argument("--benchmark", default=None,
                   help="registry benchmark name (max46, apla, t2, syn_*, "
                        "workload:<spec>)")
    p.add_argument("--cell", default=None, metavar="SPEC",
                   help="characterize a generated workload cell instead "
                        "of a registry benchmark (spec such as add8 or "
                        "clf-majority9-perceptron; `repro workload ls`)")
    p.add_argument("--tech", action="append", default=None, metavar="SPEC",
                   help="technology to include (registry name or "
                        "descriptor path); repeatable (default: flash, "
                        "eeprom, cnfet)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--power-vectors", type=int, default=256,
                   help="LFSR vectors for the activity-based energy "
                        "model (default 256)")
    p.add_argument("--variation-trials", type=int, default=200,
                   help="Monte Carlo samples of the parametric timing "
                        "distribution (default 200)")
    p.add_argument("--yield-samples", type=int, default=400,
                   help="Monte Carlo samples per yield experiment "
                        "(default 400)")
    p.add_argument("--spares", action="append", default=None,
                   metavar="ROWS,COLS",
                   help="spare-fabric point for the yield sweep; "
                        "repeatable (default 2,1)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (default 1; the "
                        "datasheet is identical for any job count)")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--checkpoint",
                   help="JSONL checkpoint file (default: .repro/"
                        "characterize-<bench>-<ntechs>-<seed>.ckpt.jsonl)")
    p.add_argument("--resume", action="store_true",
                   help="reuse cells checkpointed by an interrupted "
                        "sweep; the datasheet is bit-identical")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the validated datasheet as sorted JSON")
    p.set_defaults(handler=_cmd_characterize)

    p = sub.add_parser("workload",
                       help="generate / evaluate arithmetic and "
                            "classifier workload cells")
    p.add_argument("action", choices=("ls", "build", "eval", "curve"),
                   help="ls: registry census; build: compile one cell; "
                        "eval: differential check against the integer / "
                        "model oracle; curve: accuracy-vs-defect-rate "
                        "analysis through the yield engine")
    p.add_argument("spec", nargs="?", default=None,
                   help="workload spec (add<w>, addc<w>, cmp<w>, lt<w>, "
                        "eq<w>, gt<w>, pop<w>, clf-<dataset>-<algo>); "
                        "the workload: prefix is optional")
    p.add_argument("--words", type=int, default=64,
                   help="64-vector LFSR words for eval/curve streams "
                        "(default 64)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--samples", type=int, default=400,
                   help="curve: Monte Carlo samples per defect-rate "
                        "point (default 400)")
    p.add_argument("--rate", action="append", type=float, default=None,
                   help="curve: defect-rate point (p_stuck_off); "
                        "repeatable (default 0.0005 0.001 0.002 0.004)")
    p.add_argument("--tech", action="append", default=None, metavar="SPEC",
                   help="curve: technology for the area axis; the first "
                        "runs the yield sweep; repeatable (default cnfet)")
    p.add_argument("--jobs", type=int, default=1,
                   help="curve: parallel yield workers (default 1; the "
                        "report is identical for any job count)")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="ls: emit machine-readable JSON to FILE (bare "
                        "--json = stdout)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="build: write the compiled cover as a .pla file; "
                        "curve: write the validated curve report JSON")
    p.set_defaults(handler=_cmd_workload)

    p = sub.add_parser("table1", help="reproduce the paper's Table 1")
    p.add_argument("--tech", default=None, metavar="SPEC",
                   help="append a fourth column for this technology "
                        "(registry name or descriptor path)")
    p.set_defaults(handler=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce the paper's Table 2")
    p.add_argument("--grid", type=int, default=8,
                   help="standard-fabric grid side (default 8)")
    p.add_argument("--seed", type=int, default=2)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes for the two fabric "
                        "implementations (default 1; results are "
                        "identical for any job count)")
    p.set_defaults(handler=_cmd_table2)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
