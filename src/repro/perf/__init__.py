"""Lightweight profiling: accumulating phase timers and event counters.

The minimizer and the benchmark drivers need to answer "where did the
time go" without an external profiler: which Espresso phase dominates,
how often the tautology memo hits, how many raises EXPAND tested.  This
module keeps process-global accumulators that hot paths update with
near-zero overhead; :func:`snapshot` renders them into the plain dict
that the benchmark drivers embed in ``BENCH_perf.json``.

Usage::

    from repro import perf

    with perf.timer("espresso.expand"):
        ...                       # accumulates wall time + call count
    perf.count("taut.memo_hit")   # bumps a counter

    perf.reset()                  # start a measurement window
    ...
    data = perf.snapshot()        # {"timers": {...}, "counters": {...}}

The accumulators are per-process: parallel drivers collect a snapshot
inside each worker and merge them with :func:`merge` on the way out.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List

# name -> [total_seconds, calls]
_timers: Dict[str, List[float]] = {}
# name -> count
_counters: Dict[str, int] = {}


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall time and a call count under ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        entry = _timers.get(name)
        if entry is None:
            _timers[name] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1


def count(name: str, amount: int = 1) -> None:
    """Bump the counter ``name`` by ``amount``."""
    _counters[name] = _counters.get(name, 0) + amount


def reset() -> None:
    """Clear all accumulators (start of a measurement window)."""
    _timers.clear()
    _counters.clear()


def snapshot() -> dict:
    """The accumulators as a JSON-ready dict (accumulation continues)."""
    return {
        "timers": {name: {"seconds": round(entry[0], 6), "calls": entry[1]}
                   for name, entry in sorted(_timers.items())},
        "counters": dict(sorted(_counters.items())),
    }


def merge(into: dict, other: dict) -> dict:
    """Merge one :func:`snapshot` dict into another (for parallel workers)."""
    for name, entry in other.get("timers", {}).items():
        dst = into.setdefault("timers", {}).setdefault(
            name, {"seconds": 0.0, "calls": 0})
        dst["seconds"] = round(dst["seconds"] + entry["seconds"], 6)
        dst["calls"] += entry["calls"]
    for name, value in other.get("counters", {}).items():
        counters = into.setdefault("counters", {})
        counters[name] = counters.get(name, 0) + value
    return into


__all__ = ["count", "merge", "reset", "snapshot", "timer"]
