"""Lightweight profiling: accumulating phase timers and event counters.

The minimizer and the benchmark drivers need to answer "where did the
time go" without an external profiler: which Espresso phase dominates,
how often the tautology memo hits, how many raises EXPAND tested.  This
module keeps process-global accumulators that hot paths update with
near-zero overhead; :func:`snapshot` renders them into the plain dict
that the benchmark drivers embed in ``BENCH_perf.json``.

Usage::

    from repro import perf

    with perf.timer("espresso.expand"):
        ...                       # accumulates wall time + call count
    perf.count("taut.memo_hit")   # bumps a counter
    perf.observe("serve.evaluate", 0.0013)  # record a known duration

    perf.reset()                  # start a measurement window
    ...
    data = perf.snapshot()        # {"timers": {...}, "counters": {...}}

Each timer additionally keeps a **bounded latency reservoir**: a
fixed-size ring of the most recent per-call durations
(:data:`RESERVOIR_SIZE`), so :func:`snapshot` can report p50/p95/p99
quantiles — what the serving layer's per-endpoint metrics and the load
benchmarks are built on — without unbounded memory growth on hot paths
that fire millions of times.

The accumulators are per-process: parallel drivers collect a snapshot
inside each worker and merge them with :func:`merge` on the way out.
Quantiles cannot be merged from quantiles, so workers that need merged
tail latencies pass ``samples=True`` to :func:`snapshot`; :func:`merge`
then pools the raw reservoirs and recomputes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

#: Per-timer latency samples retained for quantile estimation.  A ring:
#: sample ``k`` overwrites slot ``k % RESERVOIR_SIZE``, so long windows
#: keep a bounded, recency-biased population.
RESERVOIR_SIZE = 256

#: Quantiles reported by :func:`snapshot` for every sampled timer.
QUANTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))

# name -> [total_seconds, calls]
_timers: Dict[str, List[float]] = {}
# name -> count
_counters: Dict[str, int] = {}
# name -> bounded ring of per-call durations (seconds)
_samples: Dict[str, List[float]] = {}
# name -> total samples ever observed (ring write cursor)
_sample_counts: Dict[str, int] = {}


def observe(name: str, seconds: float) -> None:
    """Record one call of ``seconds`` under timer ``name``.

    Equivalent to a :func:`timer` block that took ``seconds``: bumps the
    total/count accumulators and pushes the duration into the bounded
    reservoir.  Callers that measure latency themselves (the serve
    request path times arrival-to-response across an await) use this
    instead of the context manager.
    """
    entry = _timers.get(name)
    if entry is None:
        _timers[name] = [seconds, 1]
    else:
        entry[0] += seconds
        entry[1] += 1
    ring = _samples.get(name)
    if ring is None:
        _samples[name] = [seconds]
        _sample_counts[name] = 1
    else:
        cursor = _sample_counts[name]
        if len(ring) < RESERVOIR_SIZE:
            ring.append(seconds)
        else:
            ring[cursor % RESERVOIR_SIZE] = seconds
        _sample_counts[name] = cursor + 1


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall time, a call count and a latency sample."""
    start = time.perf_counter()
    try:
        yield
    finally:
        observe(name, time.perf_counter() - start)


def count(name: str, amount: int = 1) -> None:
    """Bump the counter ``name`` by ``amount``."""
    _counters[name] = _counters.get(name, 0) + amount


def reset() -> None:
    """Clear all accumulators (start of a measurement window)."""
    _timers.clear()
    _counters.clear()
    _samples.clear()
    _sample_counts.clear()


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` (0..1) of ``samples``.

    Deterministic and dependency-free (the benchmark drivers and the
    serve metrics share it); raises ``ValueError`` on an empty input.
    """
    if not samples:
        raise ValueError("quantile of empty sample set")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    frac = position - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _quantile_fields(ring: Sequence[float]) -> Dict[str, float]:
    return {label: round(quantile(ring, q) * 1e3, 6)
            for label, q in QUANTILES}


def snapshot(samples: bool = False) -> dict:
    """The accumulators as a JSON-ready dict (accumulation continues).

    Timer entries carry ``seconds``/``calls`` plus the reservoir's
    ``p50_ms``/``p95_ms``/``p99_ms``.  With ``samples=True`` the raw
    reservoir rides along (millisecond floats) so :func:`merge` can
    pool reservoirs across workers and recompute honest quantiles.
    """
    timers = {}
    for name, entry in sorted(_timers.items()):
        record: dict = {"seconds": round(entry[0], 6), "calls": entry[1]}
        ring = _samples.get(name)
        if ring:
            record.update(_quantile_fields(ring))
            if samples:
                record["samples"] = [round(s * 1e3, 6) for s in ring]
        timers[name] = record
    return {"timers": timers, "counters": dict(sorted(_counters.items()))}


def merge(into: dict, other: dict) -> dict:
    """Merge one :func:`snapshot` dict into another (for parallel workers).

    Totals and counts add.  Quantiles are recomputed from the pooled
    raw samples when either side carries them (``snapshot(samples=
    True)``); entries without raw samples drop their quantile fields —
    a quantile of totals would be a lie.
    """
    for name, entry in other.get("timers", {}).items():
        dst = into.setdefault("timers", {}).setdefault(
            name, {"seconds": 0.0, "calls": 0})
        dst["seconds"] = round(dst["seconds"] + entry["seconds"], 6)
        dst["calls"] += entry["calls"]
        pooled = list(dst.get("samples", [])) + list(entry.get("samples", []))
        if pooled:
            pooled = pooled[-RESERVOIR_SIZE:]
            dst["samples"] = pooled
            dst.update({label: round(quantile(pooled, q), 6)
                        for label, q in QUANTILES})
        else:
            for label, _q in QUANTILES:
                dst.pop(label, None)
    for name, value in other.get("counters", {}).items():
        counters = into.setdefault("counters", {})
        counters[name] = counters.get(name, 0) + value
    return into


def timer_samples(name: str) -> List[float]:
    """The current reservoir of ``name`` in seconds (copy; may be empty)."""
    return list(_samples.get(name, ()))


__all__ = ["QUANTILES", "RESERVOIR_SIZE", "count", "merge", "observe",
           "quantile", "reset", "snapshot", "timer", "timer_samples"]
