"""Unate-recursive tautology checking.

``is_tautology(cover)`` decides whether a cover equals the constant-1
function, the workhorse predicate behind cover containment, redundancy
testing and essential-prime detection in :mod:`repro.espresso`.

The implementation follows the classical unate recursive paradigm
(Brayton et al., *Logic Minimization Algorithms for VLSI Synthesis*):

1. terminal cases (empty cover, row of all dashes, single variable);
2. a cheap minterm-count upper bound;
3. unate reduction — a cover unate in some variable is a tautology iff
   the subcover of cubes with a dash in that variable is;
4. Shannon expansion about the most binate variable.

Multi-output covers are checked per output: a multi-output cover is a
tautology iff each output's input-part cover is.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.logic.cube import (BIT_DASH, BIT_ONE, BIT_ZERO, Cube,
                              full_input_mask)
from repro.logic.cover import Cover


def is_tautology(cover: Cover) -> bool:
    """True when ``cover`` evaluates to 1 for every (minterm, output) pair."""
    if cover.n_outputs == 1:
        return _taut_single(cover)
    for output in range(cover.n_outputs):
        if not _taut_single(cover.restrict_output(output)):
            return False
    return True


def covers_cube(cover: Cover, cube) -> bool:
    """True when ``cover`` contains every (minterm, output) pair of ``cube``.

    Implemented as a tautology check of the cofactor, the standard
    containment reduction.
    """
    return is_tautology(cover.cofactor(cube))


#: Above this input count the recursive procedure wins over the
#: exhaustive bit-sliced sweep (which is O(2^n / 64) per cube).
_KERNEL_TAUT_INPUT_LIMIT = 14
#: Below this cube count the recursion terminates fast enough that
#: packing for the kernel is not worth it.
_KERNEL_TAUT_MIN_CUBES = 8

#: Memo of tautology verdicts keyed on the cover's semantic signature
#: (input count + the *set* of non-empty input masks — tautology is
#: order- and duplicate-insensitive).  Only consulted on the kernel
#: backend, so the scalar path stays a pure, memo-free oracle for the
#: differential tests.  The Espresso loop re-tests the same cofactored
#: covers many times (IRREDUNDANT and the essential split both probe
#: ``covers_cube`` on near-identical remainders), which is where the
#: hits come from.
_TAUT_MEMO: "OrderedDict" = OrderedDict()
#: Verdicts kept in the LRU memo (bounds memory).  Eviction is
#: least-recently-used, one entry at a time — the old clear-at-limit
#: reset threw away the whole working set exactly when the Espresso
#: loop was hottest.
_TAUT_MEMO_LIMIT = 1 << 15
#: Below this cube count the verdict is cheaper than the lookup.
_TAUT_MEMO_MIN_CUBES = 4


def _taut_single(cover: Cover) -> bool:
    """Tautology for a single-output cover (recursive or bit-sliced)."""
    n = cover.n_inputs
    full = full_input_mask(n)
    cubes = [c.inputs for c in cover.cubes if not c.is_empty() and c.outputs]

    memo_key = None
    if len(cubes) >= _TAUT_MEMO_MIN_CUBES:
        from repro import kernels
        if kernels.enabled():
            memo_key = (n, frozenset(cubes))
            cached = _TAUT_MEMO.get(memo_key)
            if cached is not None:
                from repro import perf
                perf.count("taut.memo_hit")
                _TAUT_MEMO.move_to_end(memo_key)
                return cached

    result = _taut_single_uncached(cubes, n, full)
    if memo_key is not None:
        from repro import perf
        perf.count("taut.memo_miss")
        while len(_TAUT_MEMO) >= _TAUT_MEMO_LIMIT:
            _TAUT_MEMO.popitem(last=False)
        _TAUT_MEMO[memo_key] = result
    return result


def _taut_single_uncached(cubes, n: int, full: int) -> bool:
    """The memo-free verdict (recursive or bit-sliced)."""
    # Terminal cases stay scalar; the kernel only takes over when the
    # recursion would actually have work to do.
    if (len(cubes) >= _KERNEL_TAUT_MIN_CUBES
            and n <= _KERNEL_TAUT_INPUT_LIMIT
            and not any(mask == full for mask in cubes)):
        from repro import kernels
        if kernels.enabled():
            single = Cover(n, 1, [Cube(n, mask, 1, 1) for mask in cubes])
            return kernels.bitslice.cover_is_tautology(single)
    return _taut_masks(cubes, n, full)


def _taut_masks(cubes, n: int, full: int) -> bool:
    """Tautology on raw input-part bitmasks."""
    # Terminal: a universal row is present.
    for mask in cubes:
        if mask == full:
            return True
    if not cubes:
        return False

    # Cheap necessary condition: the cubes must contain >= 2^n minterms.
    total = 0
    target = 1 << n
    for mask in cubes:
        dashes = 0
        m = mask
        for _ in range(n):
            if m & 0b11 == 0b11:
                dashes += 1
            m >>= 2
        total += 1 << dashes
        if total >= target:
            break
    if total < target:
        return False

    # Column statistics for unate reduction and splitting choice.
    zeros = [0] * n
    ones = [0] * n
    for mask in cubes:
        m = mask
        for v in range(n):
            field = m & 0b11
            if field == BIT_ZERO:
                zeros[v] += 1
            elif field == BIT_ONE:
                ones[v] += 1
            m >>= 2

    # Unate reduction: keep only rows with a dash in every unate column.
    unate_vars = [v for v in range(n)
                  if (zeros[v] + ones[v]) > 0 and min(zeros[v], ones[v]) == 0]
    if unate_vars:
        reduced = []
        for mask in cubes:
            if all((mask >> (2 * v)) & 0b11 == BIT_DASH for v in unate_vars):
                reduced.append(mask)
        return _taut_masks(reduced, n, full)

    # Shannon expansion about the most binate variable.
    best_var = None
    best_key = None
    for v in range(n):
        if zeros[v] + ones[v] == 0:
            continue
        key = (min(zeros[v], ones[v]), zeros[v] + ones[v])
        if best_key is None or key > best_key:
            best_key = key
            best_var = v
    if best_var is None:
        # every cube all-dash would have matched the terminal case
        return False

    shift = 2 * best_var
    for value_bit in (BIT_ZERO, BIT_ONE):
        branch = []
        for mask in cubes:
            field = (mask >> shift) & 0b11
            if field & value_bit:
                branch.append(mask | (0b11 << shift))
        if not _taut_masks(branch, n, full):
            return False
    return True
