"""Unate-recursive cover complementation.

``complement_cover(cover)`` returns a cover of the complement — for
every output, the set of input minterms the original cover does *not*
assert.  Complementation gives the minimizer its OFF-sets (needed by
EXPAND) and powers the REDUCE step.

The single-output core recurses on the most binate variable with the
merge rule ``~F = x'~F_x' + x~F_x`` and the single-cube sharp as a
terminal case, with single-cube-containment cleanup at each merge.

The two quadratic-ish pieces of the recursion — the containment
cleanup at each merge and the column statistics that pick the binate
split variable — run matrix-form on the NumPy backend
(:func:`repro.kernels.cubematrix.mask_containment_cleanup` /
``mask_column_counts``) once the mask list clears the packing
threshold; the scalar loops below stay as the ``REPRO_KERNEL=python``
fallback and differential-test oracle, and both paths produce the
same masks in the same order.
"""

from __future__ import annotations

from typing import List

from repro import kernels
from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO, Cube, full_input_mask
from repro.logic.cover import Cover


def complement_cover(cover: Cover) -> Cover:
    """The complement of a (possibly multi-output) cover.

    Output ``k`` of the result asserts exactly the minterms output ``k``
    of ``cover`` does not.  Cubes with identical input parts across
    outputs are merged afterwards.
    """
    if cover.n_outputs == 1:
        return _complement_single(cover)
    result = Cover(cover.n_inputs, cover.n_outputs)
    for output in range(cover.n_outputs):
        single = _complement_single(cover.restrict_output(output))
        for cube in single.cubes:
            result.append(Cube(cover.n_inputs, cube.inputs,
                               1 << output, cover.n_outputs))
    return result.merge_identical_inputs()


def complement_output(cover: Cover, output: int) -> Cover:
    """Single-output complement of one output of a multi-output cover."""
    return _complement_single(cover.restrict_output(output))


def _complement_single(cover: Cover) -> Cover:
    n = cover.n_inputs
    masks = [c.inputs for c in cover.cubes if not c.is_empty() and c.outputs]
    result_masks = _complement_masks(masks, n, full_input_mask(n))
    return Cover(n, 1, [Cube(n, mask, 1, 1) for mask in result_masks])


def _complement_masks(masks: List[int], n: int, full: int) -> List[int]:
    """Complement on raw input-part bitmasks; returns result bitmasks."""
    # Terminal: empty cover -> universe; universal row -> empty complement.
    if not masks:
        return [full]
    for mask in masks:
        if mask == full:
            return []
    if len(masks) == 1:
        return _sharp_single(masks[0], n, full)

    # Column statistics (matrix-form on the kernel backend).
    if kernels.enabled() and len(masks) >= kernels.cubematrix.MIN_CUBES:
        zeros, ones = kernels.cubematrix.mask_column_counts(masks, n)
    else:
        zeros = [0] * n
        ones = [0] * n
        for mask in masks:
            m = mask
            for v in range(n):
                field = m & 0b11
                if field == BIT_ZERO:
                    zeros[v] += 1
                elif field == BIT_ONE:
                    ones[v] += 1
                m >>= 2

    best_var = None
    best_key = None
    for v in range(n):
        if zeros[v] + ones[v] == 0:
            continue
        key = (min(zeros[v], ones[v]), zeros[v] + ones[v])
        if best_key is None or key > best_key:
            best_key = key
            best_var = v
    if best_var is None:
        # no variable appears and no universal row: impossible unless masks
        # contains only empty fields, which were filtered by the caller.
        return []

    shift = 2 * best_var
    results: List[int] = []
    for value_bit, literal_bit in ((BIT_ZERO, BIT_ZERO), (BIT_ONE, BIT_ONE)):
        branch = []
        for mask in masks:
            field = (mask >> shift) & 0b11
            if field & value_bit:
                branch.append(mask | (0b11 << shift))
        sub = _complement_masks(branch, n, full)
        literal_mask = (full & ~(0b11 << shift)) | (literal_bit << shift)
        for mask in sub:
            results.append(mask & literal_mask)

    return _containment_cleanup(results, n)


def _sharp_single(mask: int, n: int, full: int) -> List[int]:
    """Disjoint sharp: complement of a single cube's input part."""
    results = []
    prefix = full
    for v in range(n):
        field = (mask >> (2 * v)) & 0b11
        if field in (BIT_ZERO, BIT_ONE):
            flipped = BIT_ONE if field == BIT_ZERO else BIT_ZERO
            results.append((prefix & ~(0b11 << (2 * v))) | (flipped << (2 * v)))
            prefix = (prefix & ~(0b11 << (2 * v))) | (field << (2 * v))
    return results


def _containment_cleanup(masks: List[int], n: int) -> List[int]:
    """Drop input-part masks contained in another mask of the list.

    Both paths share the largest-first processing order and return the
    same masks in the same order: the matrix form's "contained in any
    earlier mask" drop rule equals this greedy kept-list scan because
    containment is transitive (see
    :func:`repro.kernels.cubematrix.mask_containment_cleanup`).
    """
    order = sorted(set(masks), key=_dash_count_key(n), reverse=True)
    if kernels.enabled() and len(order) >= kernels.cubematrix.MIN_CUBES:
        return kernels.cubematrix.mask_containment_cleanup(order, n)
    kept: List[int] = []
    for mask in order:
        if not any((other | mask) == other for other in kept):
            kept.append(mask)
    return kept


def _dash_count_key(n: int):
    def key(mask: int) -> int:
        count = 0
        m = mask
        for _ in range(n):
            if m & 0b11 == 0b11:
                count += 1
            m >>= 2
        return count
    return key
