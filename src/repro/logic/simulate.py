"""Vector evaluation and equivalence helpers.

Thin utilities shared by tests, the switch-level circuit models and the
benches: integer-minterm <-> bit-vector conversion, exhaustive and
sampled cover equivalence, and difference reporting for debugging.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import kernels
from repro.logic.cover import Cover


def minterm_to_vector(minterm: int, n_inputs: int) -> List[int]:
    """Integer minterm to 0/1 list, bit ``i`` = variable ``i``."""
    return [(minterm >> i) & 1 for i in range(n_inputs)]


def vector_to_minterm(vector: Sequence[int]) -> int:
    """0/1 list to integer minterm."""
    minterm = 0
    for i, bit in enumerate(vector):
        if bit:
            minterm |= 1 << i
    return minterm


def all_vectors(n_inputs: int) -> Iterator[List[int]]:
    """Every input vector in minterm order (exponential)."""
    for minterm in range(1 << n_inputs):
        yield minterm_to_vector(minterm, n_inputs)


def sample_vectors(n_inputs: int, samples: int, seed: int = 0,
                   rng: Optional[random.Random] = None) -> Iterator[List[int]]:
    """Seeded random input vectors.

    Pass an explicit ``rng`` to share/advance a caller-owned generator
    (the parallel suite and property tests use this for reproducible
    sub-streams); ``seed`` is used only when ``rng`` is omitted.
    """
    if rng is None:
        rng = random.Random(seed)
    for _ in range(samples):
        yield minterm_to_vector(rng.getrandbits(n_inputs), n_inputs)


def covers_equal(a: Cover, b: Cover, dc: Optional[Cover] = None,
                 max_exhaustive: int = 14, samples: int = 4096,
                 seed: int = 0, rng: Optional[random.Random] = None) -> bool:
    """Functional equality of two covers, modulo an optional DC-set."""
    return first_difference(a, b, dc, max_exhaustive, samples, seed,
                            rng=rng) is None


def first_difference(a: Cover, b: Cover, dc: Optional[Cover] = None,
                     max_exhaustive: int = 14, samples: int = 4096,
                     seed: int = 0,
                     rng: Optional[random.Random] = None
                     ) -> Optional[Tuple[int, int, int]]:
    """First (minterm, mask_a, mask_b) where the covers disagree, else ``None``.

    Exhaustive up to ``max_exhaustive`` inputs, sampled beyond (seeded
    via ``seed``, or an explicit ``rng`` when given).
    """
    if (a.n_inputs, a.n_outputs) != (b.n_inputs, b.n_outputs):
        raise ValueError("cover dimensions do not match")
    use_kernel = kernels.enabled() and a.n_outputs <= kernels.bitslice.WORD
    if a.n_inputs <= max_exhaustive:
        if use_kernel:
            return kernels.bitslice.exhaustive_difference(a, b, dc)
        minterms: Sequence[int] = range(1 << a.n_inputs)
    else:
        if rng is None:
            rng = random.Random(seed)
        minterms = [rng.getrandbits(a.n_inputs) for _ in range(samples)]
        if use_kernel:
            return kernels.bitslice.sampled_difference(a, b, minterms, dc)
    for minterm in minterms:
        mask_a = a.output_mask_for(minterm)
        mask_b = b.output_mask_for(minterm)
        dc_mask = dc.output_mask_for(minterm) if dc is not None else 0
        if (mask_a ^ mask_b) & ~dc_mask:
            return (minterm, mask_a, mask_b)
    return None
