"""Boolean-logic substrate: cubes, covers, functions, PLA file format.

This subpackage implements the two-level logic machinery the paper's
PLA architecture consumes: positional-notation cubes, covers (sums of
products), multi-output Boolean functions with don't-care sets, the
Berkeley ``.pla`` file format, a small expression parser, and the
unate-recursive tautology / complementation procedures used by the
Espresso-style minimizer in :mod:`repro.espresso`.
"""

from repro.logic.cube import Cube
from repro.logic.cover import Cover
from repro.logic.function import BooleanFunction
from repro.logic.pla_format import parse_pla, write_pla
from repro.logic.expr import parse_expression
from repro.logic.tautology import is_tautology
from repro.logic.complement import complement_cover
from repro.logic.bdd import BDDManager, covers_equivalent_bdd
from repro.logic.verify import check_equivalence, assert_equivalent, EquivalenceResult

__all__ = [
    "Cube",
    "Cover",
    "BooleanFunction",
    "parse_pla",
    "write_pla",
    "parse_expression",
    "is_tautology",
    "complement_cover",
    "BDDManager",
    "covers_equivalent_bdd",
    "check_equivalence",
    "assert_equivalent",
    "EquivalenceResult",
]
