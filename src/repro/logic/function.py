"""Multi-output Boolean functions with don't-care sets.

A :class:`BooleanFunction` packages the three covers two-level
synthesis works with — ON-set, DC-set (don't care) and, lazily, the
OFF-set — plus naming metadata.  Equivalence checking (exhaustive for
small input counts, sampled otherwise) gives the test suite its oracle.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.logic.complement import complement_cover
from repro.logic.cover import Cover
from repro.logic.cube import Cube


class BooleanFunction:
    """An incompletely-specified multi-output Boolean function.

    Parameters
    ----------
    on_set:
        Cover of the minterms each output must assert.
    dc_set:
        Cover of the don't-care minterms (optional).
    name:
        Benchmark/function name used in reports.
    input_labels, output_labels:
        Optional signal names (``.ilb`` / ``.ob`` in PLA files).
    """

    def __init__(self, on_set: Cover, dc_set: Optional[Cover] = None,
                 name: str = "f",
                 input_labels: Optional[Sequence[str]] = None,
                 output_labels: Optional[Sequence[str]] = None):
        self.on_set = on_set
        self.dc_set = dc_set if dc_set is not None else \
            Cover.empty(on_set.n_inputs, on_set.n_outputs)
        if (self.dc_set.n_inputs, self.dc_set.n_outputs) != \
                (on_set.n_inputs, on_set.n_outputs):
            raise ValueError("DC-set dimensions do not match ON-set")
        self.name = name
        self.input_labels = list(input_labels) if input_labels else \
            [f"x{i}" for i in range(on_set.n_inputs)]
        self.output_labels = list(output_labels) if output_labels else \
            [f"y{k}" for k in range(on_set.n_outputs)]
        self._off_set: Optional[Cover] = None

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Number of input variables."""
        return self.on_set.n_inputs

    @property
    def n_outputs(self) -> int:
        """Number of outputs."""
        return self.on_set.n_outputs

    @property
    def off_set(self) -> Cover:
        """The OFF-set, computed once as ``complement(ON + DC)``."""
        if self._off_set is None:
            self._off_set = complement_cover(self.on_set + self.dc_set)
        return self._off_set

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_truth_table(cls, outputs_by_minterm: Sequence[int], n_inputs: int,
                         n_outputs: int = 1, name: str = "f") -> "BooleanFunction":
        """Build from a dense table: ``outputs_by_minterm[m]`` is the output bitmask."""
        if len(outputs_by_minterm) != (1 << n_inputs):
            raise ValueError("truth table length must be 2**n_inputs")
        on = Cover(n_inputs, n_outputs)
        for minterm, mask in enumerate(outputs_by_minterm):
            if mask:
                on.append(Cube.from_minterm(minterm, n_inputs, n_outputs, outputs=mask))
        return cls(on, name=name)

    @classmethod
    def random(cls, n_inputs: int, n_outputs: int, n_cubes: int, seed: int,
               name: str = "random", dash_probability: float = 0.4,
               dc_cubes: int = 0) -> "BooleanFunction":
        """A seeded random function; the DC-set is made disjoint from the ON-set."""
        rng = random.Random(seed)
        on = Cover.random(n_inputs, n_outputs, n_cubes, rng, dash_probability)
        dc = Cover(n_inputs, n_outputs)
        if dc_cubes:
            candidate = Cover.random(n_inputs, n_outputs, dc_cubes, rng,
                                     dash_probability)
            off = complement_cover(on)
            for cube in candidate.cubes:
                for off_cube in off.cubes:
                    clipped = cube.intersection(off_cube)
                    if clipped is not None:
                        dc.append(clipped)
            dc = dc.single_cube_containment()
        return cls(on, dc, name=name)

    # ------------------------------------------------------------------
    # evaluation & equivalence
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Sequence[int]) -> List[bool]:
        """Evaluate the ON-set on an input vector (don't-cares read as 0)."""
        return self.on_set.evaluate(assignment)

    def is_dont_care(self, minterm: int, output: int) -> bool:
        """True when (minterm, output) lies in the DC-set."""
        return bool((self.dc_set.output_mask_for(minterm) >> output) & 1)

    def equivalent_to(self, other_cover: Cover, max_exhaustive: int = 14,
                      samples: int = 4096, seed: int = 0) -> bool:
        """Check that ``other_cover`` implements this function.

        ``other_cover`` must agree with the ON-set everywhere outside the
        DC-set.  Exhaustive up to ``max_exhaustive`` inputs, seeded
        random sampling beyond.
        """
        if (other_cover.n_inputs, other_cover.n_outputs) != \
                (self.n_inputs, self.n_outputs):
            return False
        if self.n_inputs <= max_exhaustive:
            minterms = range(1 << self.n_inputs)
        else:
            rng = random.Random(seed)
            minterms = (rng.getrandbits(self.n_inputs) for _ in range(samples))
        for minterm in minterms:
            want = self.on_set.output_mask_for(minterm)
            have = other_cover.output_mask_for(minterm)
            dc = self.dc_set.output_mask_for(minterm)
            if (want ^ have) & ~dc:
                return False
        return True

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_output_phase(self, phases: Sequence[bool]) -> "BooleanFunction":
        """The function with some outputs complemented.

        ``phases[k]`` True keeps output ``k``; False replaces it with its
        complement (the new ON-set of that output is the old OFF-set;
        the DC-set is unchanged).  Used by output-phase assignment.
        """
        if len(phases) != self.n_outputs:
            raise ValueError("need one phase per output")
        on = Cover(self.n_inputs, self.n_outputs)
        for output, keep in enumerate(phases):
            source = self.on_set if keep else self.off_set
            for cube in source.restrict_output(output).cubes:
                on.append(Cube(self.n_inputs, cube.inputs, 1 << output,
                               self.n_outputs))
        return BooleanFunction(on.merge_identical_inputs(), self.dc_set.copy(),
                               name=f"{self.name}.phased",
                               input_labels=self.input_labels,
                               output_labels=self.output_labels)

    def restricted_to_output(self, output: int) -> "BooleanFunction":
        """The single-output function of output ``output``."""
        return BooleanFunction(self.on_set.restrict_output(output),
                               self.dc_set.restrict_output(output),
                               name=f"{self.name}.{self.output_labels[output]}",
                               input_labels=self.input_labels,
                               output_labels=[self.output_labels[output]])

    def stats(self) -> dict:
        """Summary dict used by reports: inputs, outputs, product terms."""
        return {
            "name": self.name,
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "products": self.on_set.n_cubes(),
            "literals": self.on_set.n_literals(),
        }

    def __repr__(self) -> str:
        return (f"BooleanFunction({self.name!r}, i={self.n_inputs}, "
                f"o={self.n_outputs}, p={self.on_set.n_cubes()})")
