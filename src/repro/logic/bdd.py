"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

Truth tables cap exact equivalence checking at ~16 inputs; the `t2`
benchmark alone has 17.  This module provides a small, classical ROBDD
engine — hash-consed nodes, the `ite` apply operator with memoization,
cover conversion and model counting — giving the test suite and the
verification helpers an exact oracle that scales to every function in
this repository.

The manager owns all nodes; BDD references are plain integers
(0 = constant false, 1 = constant true), so sets/dicts of functions are
cheap.  Variable order is the identity (variable ``i`` at level ``i``);
the functions here are small enough that ordering heuristics are not
needed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.logic.cover import Cover
from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO, Cube

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BDDManager:
    """Owns the shared node store of a family of ROBDDs.

    Nodes are triples ``(level, low, high)`` hash-consed into
    :attr:`_unique`; node 0 and 1 are the constants.  All operations are
    memoized per manager.
    """

    def __init__(self, n_vars: int):
        if n_vars < 0:
            raise ValueError("variable count must be non-negative")
        self.n_vars = n_vars
        # node id -> (level, low, high); terminals get sentinel level n_vars
        self._nodes: List[Tuple[int, int, int]] = [
            (n_vars, FALSE, FALSE), (n_vars, TRUE, TRUE)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def node(self, level: int, low: int, high: int) -> int:
        """The (hash-consed, reduced) node for ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node_id
        return node_id

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        if not 0 <= index < self.n_vars:
            raise ValueError(f"variable {index} out of range")
        return self.node(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD of ``~variable``."""
        return self.node(index, TRUE, FALSE)

    def level_of(self, f: int) -> int:
        """The decision level of node ``f`` (``n_vars`` for constants)."""
        return self._nodes[f][0]

    def cofactors(self, f: int, level: int) -> Tuple[int, int]:
        """(low, high) cofactors of ``f`` with respect to ``level``."""
        node_level, low, high = self._nodes[f]
        if node_level == level:
            return low, high
        return f, f

    # ------------------------------------------------------------------
    # the ite operator (all Boolean connectives reduce to it)
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: ``f ? g : h`` (the universal BDD operation)."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if (g, h) == (TRUE, FALSE):
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))
        f0, f1 = self.cofactors(f, level)
        g0, g1 = self.cofactors(g, level)
        h0, h1 = self.cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self.node(level, low, high)
        self._ite_cache[key] = result
        return result

    # connectives ------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE, TRUE)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def from_cube_inputs(self, cube: Cube) -> int:
        """BDD of a cube's input part (product of its literals)."""
        result = TRUE
        for var in reversed(range(cube.n_inputs)):
            field = cube.field(var)
            if field == BIT_ONE:
                result = self.node(var, FALSE, result)
            elif field == BIT_ZERO:
                result = self.node(var, result, FALSE)
            elif field != BIT_DASH:
                return FALSE  # empty field: empty cube
        return result

    def from_cover_output(self, cover: Cover, output: int = 0) -> int:
        """BDD of one output of a cover (OR of its cubes' input parts)."""
        result = FALSE
        for cube in cover.cubes:
            if (cube.outputs >> output) & 1:
                result = self.apply_or(result, self.from_cube_inputs(cube))
        return result

    def from_cover(self, cover: Cover) -> List[int]:
        """One BDD per output of a multi-output cover."""
        return [self.from_cover_output(cover, k)
                for k in range(cover.n_outputs)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment) -> bool:
        """Evaluate a BDD on a 0/1 assignment vector."""
        node = f
        while node not in (FALSE, TRUE):
            level, low, high = self._nodes[node]
            node = high if assignment[level] else low
        return node == TRUE

    def satcount(self, f: int) -> int:
        """Number of satisfying assignments over all ``n_vars`` variables.

        The classical weighted count: each edge that skips levels
        multiplies its child's count by 2 per skipped variable.
        """
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            # assignments of variables strictly below node's level
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            if node in cache:
                return cache[node]
            level, low, high = self._nodes[node]
            low_count = count(low) << (self.level_of(low) - level - 1)
            high_count = count(high) << (self.level_of(high) - level - 1)
            cache[node] = low_count + high_count
            return cache[node]

        return count(f) << self.level_of(f)

    def any_sat(self, f: int) -> Optional[List[int]]:
        """One satisfying assignment (as a 0/1 list), or ``None``."""
        if f == FALSE:
            return None
        assignment = [0] * self.n_vars
        node = f
        while node != TRUE:
            level, low, high = self._nodes[node]
            if high != FALSE:
                assignment[level] = 1
                node = high
            else:
                assignment[level] = 0
                node = low
        return assignment

    def size(self, f: int) -> int:
        """Number of decision nodes reachable from ``f``."""
        seen = set()

        def walk(node: int) -> None:
            if node in (FALSE, TRUE) or node in seen:
                return
            seen.add(node)
            _level, low, high = self._nodes[node]
            walk(low)
            walk(high)

        walk(f)
        return len(seen)


def covers_equivalent_bdd(a: Cover, b: Cover,
                          dc: Optional[Cover] = None) -> bool:
    """Exact multi-output cover equivalence via BDDs.

    Scales to ~30+ inputs, far beyond the truth-table oracle; used for
    the 17-input ``t2`` benchmark.  With a DC-set, the covers may differ
    only inside it.
    """
    if (a.n_inputs, a.n_outputs) != (b.n_inputs, b.n_outputs):
        return False
    manager = BDDManager(a.n_inputs)
    for output in range(a.n_outputs):
        fa = manager.from_cover_output(a, output)
        fb = manager.from_cover_output(b, output)
        diff = manager.apply_xor(fa, fb)
        if dc is not None:
            care = manager.apply_not(manager.from_cover_output(dc, output))
            diff = manager.apply_and(diff, care)
        if diff != FALSE:
            return False
    return True
