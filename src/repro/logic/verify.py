"""Unified combinational equivalence checking.

One API over the three oracles the library has:

* **truth table** — exhaustive, exact, up to ``exhaustive_limit`` inputs;
* **BDD** — exact at any size this repository reaches (used automatically
  above the truth-table limit);
* **sampling** — probabilistic spot check, kept for cross-validation.

``check_equivalence`` returns a :class:`EquivalenceResult` carrying the
verdict, the method used and a counterexample when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import kernels
from repro.logic.bdd import BDDManager, FALSE, covers_equivalent_bdd
from repro.logic.cover import Cover


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check.

    Attributes
    ----------
    equivalent:
        The verdict.
    method:
        ``"truth-table"`` or ``"bdd"``.
    counterexample:
        An input vector where the covers differ (with the differing
        output index), or ``None`` when equivalent.
    """

    equivalent: bool
    method: str
    counterexample: Optional[List[int]] = None
    output: Optional[int] = None


def check_equivalence(a: Cover, b: Cover, dc: Optional[Cover] = None,
                      exhaustive_limit: int = 12) -> EquivalenceResult:
    """Exact equivalence of two covers, modulo an optional DC-set.

    Picks the truth-table oracle for small input counts and the BDD
    engine beyond; both are exact.  A counterexample is produced on
    failure (from the BDD, via ``any_sat`` on the difference).
    """
    if (a.n_inputs, a.n_outputs) != (b.n_inputs, b.n_outputs):
        raise ValueError("cover dimensions do not match")

    if a.n_inputs <= exhaustive_limit:
        if kernels.enabled() and a.n_outputs <= kernels.bitslice.WORD:
            found = kernels.bitslice.exhaustive_difference(a, b, dc)
            if found is None:
                return EquivalenceResult(True, "truth-table")
            minterm, mask_a, mask_b = found
            dc_mask = dc.output_mask_for(minterm) if dc is not None else 0
            diff = (mask_a ^ mask_b) & ~dc_mask
            vector = [(minterm >> i) & 1 for i in range(a.n_inputs)]
            output = (diff & -diff).bit_length() - 1
            return EquivalenceResult(False, "truth-table", vector, output)
        for minterm in range(1 << a.n_inputs):
            mask_a = a.output_mask_for(minterm)
            mask_b = b.output_mask_for(minterm)
            dc_mask = dc.output_mask_for(minterm) if dc is not None else 0
            diff = (mask_a ^ mask_b) & ~dc_mask
            if diff:
                vector = [(minterm >> i) & 1 for i in range(a.n_inputs)]
                output = (diff & -diff).bit_length() - 1
                return EquivalenceResult(False, "truth-table", vector, output)
        return EquivalenceResult(True, "truth-table")

    manager = BDDManager(a.n_inputs)
    for output in range(a.n_outputs):
        fa = manager.from_cover_output(a, output)
        fb = manager.from_cover_output(b, output)
        diff = manager.apply_xor(fa, fb)
        if dc is not None:
            care = manager.apply_not(manager.from_cover_output(dc, output))
            diff = manager.apply_and(diff, care)
        if diff != FALSE:
            return EquivalenceResult(False, "bdd", manager.any_sat(diff),
                                     output)
    return EquivalenceResult(True, "bdd")


def assert_equivalent(a: Cover, b: Cover, dc: Optional[Cover] = None) -> None:
    """Raise ``AssertionError`` with the counterexample when not equivalent."""
    result = check_equivalence(a, b, dc)
    if not result.equivalent:
        raise AssertionError(
            f"covers differ at input {result.counterexample} "
            f"output {result.output} (method: {result.method})")
