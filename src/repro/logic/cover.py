"""Covers — ordered collections of cubes representing sums of products.

A :class:`Cover` is the central currency of the library: minimizers
consume and produce covers, PLA planes are programmed from covers, and
area models count their rows and columns.  Covers are *mostly*
immutable in use; mutating helpers return new covers.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO, Cube, full_output_mask


class Cover:
    """A list of :class:`~repro.logic.cube.Cube` with shared dimensions.

    Parameters
    ----------
    n_inputs, n_outputs:
        Dimensions shared by every cube.
    cubes:
        Initial cube iterable; dimension-checked.
    """

    __slots__ = ("n_inputs", "n_outputs", "cubes",
                 "_version", "_mask_cache", "_mask_version",
                 "_pack", "_pack_version",
                 "_matrix", "_matrix_version")

    #: Entries kept in the per-cover minterm->mask memo before it is
    #: reset (bounds memory on huge sampled sweeps).
    _MASK_CACHE_LIMIT = 1 << 18

    def __init__(self, n_inputs: int, n_outputs: int = 1,
                 cubes: Optional[Iterable[Cube]] = None):
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.cubes: List[Cube] = []
        # Mutation counter: bumped by append(), the cover's only
        # mutator.  Both evaluation caches (the scalar minterm memo and
        # the kernels' packed-array form) validate against it.
        self._version = 0
        self._mask_cache: Optional[dict] = None
        self._mask_version = -1
        self._pack = None
        self._pack_version = -1
        self._matrix = None
        self._matrix_version = -1
        if cubes is not None:
            for cube in cubes:
                self.append(cube)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        """Build from Berkeley-style rows, e.g. ``["10- 1", "0-1 1"]``."""
        cubes = []
        for row in rows:
            parts = row.split()
            if len(parts) == 1:
                parts.append("1")
            cubes.append(Cube.from_string(parts[0], parts[1]))
        if not cubes:
            raise ValueError("cannot infer dimensions from an empty row list")
        return cls(cubes[0].n_inputs, cubes[0].n_outputs, cubes)

    @classmethod
    def empty(cls, n_inputs: int, n_outputs: int = 1) -> "Cover":
        """The empty cover (constant 0 everywhere)."""
        return cls(n_inputs, n_outputs)

    @classmethod
    def universe(cls, n_inputs: int, n_outputs: int = 1) -> "Cover":
        """The single-full-cube cover (constant 1 everywhere)."""
        return cls(n_inputs, n_outputs, [Cube.full(n_inputs, n_outputs)])

    @classmethod
    def random(cls, n_inputs: int, n_outputs: int, n_cubes: int,
               rng: random.Random, dash_probability: float = 0.4) -> "Cover":
        """A random cover (seeded); useful for property tests and workloads."""
        cubes = []
        for _ in range(n_cubes):
            inputs = 0
            for v in range(n_inputs):
                roll = rng.random()
                if roll < dash_probability:
                    field = BIT_DASH
                elif roll < dash_probability + (1 - dash_probability) / 2:
                    field = BIT_ZERO
                else:
                    field = BIT_ONE
                inputs |= field << (2 * v)
            outputs = rng.randrange(1, full_output_mask(n_outputs) + 1)
            cubes.append(Cube(n_inputs, inputs, outputs, n_outputs))
        return cls(n_inputs, n_outputs, cubes)

    def copy(self) -> "Cover":
        """A shallow copy (cubes are immutable, so this is a full copy)."""
        return Cover(self.n_inputs, self.n_outputs, self.cubes)

    # ------------------------------------------------------------------
    # list protocol
    # ------------------------------------------------------------------
    def append(self, cube: Cube) -> None:
        """Append a cube after dimension-checking it."""
        if cube.n_inputs != self.n_inputs or cube.n_outputs != self.n_outputs:
            raise ValueError(
                f"cube dimensions ({cube.n_inputs}, {cube.n_outputs}) do not match "
                f"cover dimensions ({self.n_inputs}, {self.n_outputs})")
        self.cubes.append(cube)
        self._version += 1

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, index: int) -> Cube:
        return self.cubes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return (self.n_inputs == other.n_inputs and self.n_outputs == other.n_outputs
                and self.cubes == other.cubes)

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.n_inputs, self.n_outputs, tuple(self.cubes)))

    def __repr__(self) -> str:
        return (f"Cover(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
                f"cubes={len(self.cubes)})")

    def __add__(self, other: "Cover") -> "Cover":
        """Concatenation (logical OR of the two covers)."""
        if (other.n_inputs, other.n_outputs) != (self.n_inputs, self.n_outputs):
            raise ValueError("cover dimensions do not match")
        return Cover(self.n_inputs, self.n_outputs, list(self.cubes) + list(other.cubes))

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def n_cubes(self) -> int:
        """Number of product terms (PLA rows)."""
        return len(self.cubes)

    def n_literals(self) -> int:
        """Total input-literal count across all cubes."""
        return sum(cube.n_literals() for cube in self.cubes)

    def cost(self) -> Tuple[int, int, int]:
        """Minimization cost: (cubes, input literals, output literals)."""
        out_lits = sum(bin(cube.outputs).count("1") for cube in self.cubes)
        return (len(self.cubes), self.n_literals(), out_lits)

    def is_empty(self) -> bool:
        """True when the cover contains no non-empty cube."""
        return all(cube.is_empty() for cube in self.cubes)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Sequence[int]) -> List[bool]:
        """Evaluate every output on a 0/1 input vector."""
        result_mask = 0
        for cube in self.cubes:
            if result_mask == full_output_mask(self.n_outputs):
                break
            if cube.evaluate(assignment):
                result_mask |= cube.outputs
        return [(result_mask >> k) & 1 == 1 for k in range(self.n_outputs)]

    def evaluate_minterm(self, minterm: int) -> int:
        """Evaluate on an integer minterm; returns the output bitmask."""
        return self.output_mask_for(minterm)

    @staticmethod
    def _input_part_contains(cube: Cube, minterm: int) -> bool:
        for i in range(cube.n_inputs):
            bit = BIT_ONE if (minterm >> i) & 1 else BIT_ZERO
            if not cube.field(i) & bit:
                return False
        return True

    def output_mask_for(self, minterm: int) -> int:
        """Bitmask of outputs asserted for the given input minterm.

        Results are memoized per cover (the memo is invalidated by
        :meth:`append` through the mutation counter), so repeated walks
        over the same cover — truth tables, sampled sweeps, the exact
        minimizer's covering table — pay the cube scan once per
        minterm.
        """
        cache = self._mask_cache
        if cache is None or self._mask_version != self._version:
            cache = self._mask_cache = {}
            self._mask_version = self._version
        elif len(cache) > self._MASK_CACHE_LIMIT:
            cache.clear()
        result = cache.get(minterm)
        if result is None:
            result = 0
            for cube in self.cubes:
                if self._input_part_contains(cube, minterm):
                    result |= cube.outputs
            cache[minterm] = result
        return result

    def truth_table(self) -> List[int]:
        """Output bitmask for every input minterm (exponential; small n only)."""
        from repro import kernels
        if kernels.enabled() and self.n_outputs <= kernels.bitslice.WORD:
            return kernels.bitslice.cover_truth_table(self)
        return [self.output_mask_for(m) for m in range(1 << self.n_inputs)]

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict_output(self, output: int) -> "Cover":
        """The single-output input-part cover of ``output`` (n_outputs becomes 1)."""
        cubes = [Cube(self.n_inputs, cube.inputs, 1, 1)
                 for cube in self.cubes if (cube.outputs >> output) & 1]
        return Cover(self.n_inputs, 1, cubes)

    def _cube_matrix(self):
        """The packed :class:`~repro.kernels.cubematrix.CubeMatrix` when
        the matrix engine applies to this cover, else ``None``.

        The engine is skipped for small covers (packing overhead beats
        the win below :data:`~repro.kernels.cubematrix.MIN_CUBES` cubes)
        and for covers wider than one output word.
        """
        from repro import kernels
        if not kernels.enabled() or kernels.cubematrix is None:
            return None
        cm = kernels.cubematrix
        if self.n_outputs > cm.MAX_OUTPUTS or len(self.cubes) < cm.MIN_CUBES:
            return None
        return cm.matrix_of(self)

    def cofactor(self, cube: Cube) -> "Cover":
        """The cover's Shannon cofactor with respect to ``cube``."""
        matrix = self._cube_matrix()
        if matrix is not None:
            from repro.kernels import cubematrix as cm
            pairs = cm.cofactor_pairs(matrix, cube.inputs, cube.outputs)
            cubes = [Cube(self.n_inputs, inp, out, self.n_outputs)
                     for inp, out in pairs]
            return Cover(self.n_inputs, self.n_outputs, cubes)
        cubes = []
        for c in self.cubes:
            cf = c.cofactor(cube)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.n_inputs, self.n_outputs, cubes)

    def cofactor_var(self, var: int, value: bool) -> "Cover":
        """Cofactor with respect to a single variable's value."""
        field = BIT_ONE if value else BIT_ZERO
        literal = Cube.full(self.n_inputs, self.n_outputs).with_field(var, field)
        return self.cofactor(literal)

    def without(self, index: int) -> "Cover":
        """A copy omitting the cube at ``index``."""
        cubes = self.cubes[:index] + self.cubes[index + 1:]
        return Cover(self.n_inputs, self.n_outputs, cubes)

    def single_cube_containment(self) -> "Cover":
        """Drop every cube contained in another single cube of the cover.

        Cheap (quadratic) cleanup pass used throughout the minimizer.
        """
        order = sorted(range(len(self.cubes)),
                       key=lambda i: -self.cubes[i].size())
        matrix = self._cube_matrix()
        if matrix is not None:
            from repro.kernels import cubematrix as cm
            kept_idx = cm.scc_indices(matrix, order)
            return Cover(self.n_inputs, self.n_outputs,
                         [self.cubes[i] for i in kept_idx])
        kept: List[Cube] = []
        for i in order:
            cube = self.cubes[i]
            if cube.is_empty():
                continue
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        return Cover(self.n_inputs, self.n_outputs, kept)

    def merge_identical_inputs(self) -> "Cover":
        """OR together the output parts of cubes with identical input parts."""
        merged = {}
        order = []
        for cube in self.cubes:
            if cube.inputs in merged:
                merged[cube.inputs] |= cube.outputs
            else:
                merged[cube.inputs] = cube.outputs
                order.append(cube.inputs)
        cubes = [Cube(self.n_inputs, inputs, merged[inputs], self.n_outputs)
                 for inputs in order]
        return Cover(self.n_inputs, self.n_outputs, cubes)

    def sorted_by(self, key: Callable[[Cube], object]) -> "Cover":
        """A copy with cubes sorted by ``key``."""
        return Cover(self.n_inputs, self.n_outputs, sorted(self.cubes, key=key))

    # ------------------------------------------------------------------
    # variable statistics (used by the unate-recursive procedures)
    # ------------------------------------------------------------------
    def column_counts(self) -> List[Tuple[int, int]]:
        """Per variable, ``(count of 0-literals, count of 1-literals)``."""
        matrix = self._cube_matrix()
        if matrix is not None:
            from repro.kernels import cubematrix as cm
            zeros_a, ones_a = cm.column_counts(matrix)
            return list(zip(zeros_a.tolist(), ones_a.tolist()))
        zeros = [0] * self.n_inputs
        ones = [0] * self.n_inputs
        for cube in self.cubes:
            inputs = cube.inputs
            for v in range(self.n_inputs):
                field = inputs & 0b11
                if field == BIT_ZERO:
                    zeros[v] += 1
                elif field == BIT_ONE:
                    ones[v] += 1
                inputs >>= 2
        return list(zip(zeros, ones))

    def most_binate_variable(self) -> Optional[int]:
        """The splitting variable: most binate, ties broken by total count.

        Returns ``None`` when every cube is all-dashes (no variable
        appears in any cube).
        """
        counts = self.column_counts()
        best_var = None
        best_key = None
        for var, (zeros, ones) in enumerate(counts):
            if zeros + ones == 0:
                continue
            binate = min(zeros, ones)
            key = (binate, zeros + ones)
            if best_key is None or key > best_key:
                best_key = key
                best_var = var
        return best_var

    def is_unate_in(self, var: int) -> bool:
        """True when variable ``var`` appears in only one polarity."""
        zeros, ones = self.column_counts()[var]
        return zeros == 0 or ones == 0

    def is_unate(self) -> bool:
        """True when the cover is unate in every variable."""
        return all(min(z, o) == 0 for z, o in self.column_counts())

    # ------------------------------------------------------------------
    # I/O helpers
    # ------------------------------------------------------------------
    def to_strings(self) -> List[str]:
        """Berkeley-style rows (input part, space, output part)."""
        return [str(cube) for cube in self.cubes]
