"""Positional-notation cubes for multi-output two-level logic.

A cube is a product term over ``n_inputs`` binary variables together
with a set of outputs it contributes to.  Each input variable occupies
two bits of an integer bitmask (the classical Espresso *positional
notation*):

=======  ==========  =======================================
symbol   bit pattern  meaning
=======  ==========  =======================================
``0``    ``01``       the complemented literal (input must be 0)
``1``    ``10``       the positive literal (input must be 1)
``-``    ``11``       the variable does not appear (don't care)
(void)   ``00``       empty — the cube contains no minterm
=======  ==========  =======================================

Bit ``2*i`` of :attr:`Cube.inputs` is set when value 0 of variable
``i`` is allowed; bit ``2*i + 1`` when value 1 is allowed.  The output
part is a plain bitmask with bit ``k`` set when the cube belongs to the
ON-set (or DC-set) of output ``k``.

Cubes are immutable and hashable; all algebra returns new cubes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

#: Per-variable field meaning "value 0 allowed".
BIT_ZERO = 0b01
#: Per-variable field meaning "value 1 allowed".
BIT_ONE = 0b10
#: Per-variable field meaning "variable absent from the product term".
BIT_DASH = 0b11

_CHAR_TO_FIELD = {"0": BIT_ZERO, "1": BIT_ONE, "-": BIT_DASH, "~": 0, "2": BIT_DASH}
_FIELD_TO_CHAR = {BIT_ZERO: "0", BIT_ONE: "1", BIT_DASH: "-", 0: "~"}


def full_input_mask(n_inputs: int) -> int:
    """Bitmask of a cube whose every input field is ``-`` (don't care)."""
    return (1 << (2 * n_inputs)) - 1


def full_output_mask(n_outputs: int) -> int:
    """Bitmask selecting every output."""
    return (1 << n_outputs) - 1


class Cube:
    """An immutable product term with a multi-output tag.

    Parameters
    ----------
    n_inputs:
        Number of binary input variables.
    inputs:
        Positional-notation bitmask (two bits per input).
    outputs:
        Bitmask of outputs the cube asserts.
    n_outputs:
        Number of outputs of the enclosing function (used for printing
        and for universe-sized masks).
    """

    __slots__ = ("n_inputs", "n_outputs", "inputs", "outputs",
                 "_n_literals", "_n_dashes")

    def __init__(self, n_inputs: int, inputs: int, outputs: int, n_outputs: int = 1):
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.inputs = inputs & full_input_mask(n_inputs)
        self.outputs = outputs & full_output_mask(n_outputs)
        # Literal/dash counts are memoized lazily.  Cubes are immutable
        # (all algebra returns new cubes), so unlike the Cover caches no
        # version counter is needed — the masks these derive from can
        # never change after __init__.
        self._n_literals: Optional[int] = None
        self._n_dashes: Optional[int] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, input_str: str, output_str: str = "1") -> "Cube":
        """Build a cube from its Berkeley PLA row, e.g. ``Cube.from_string("10-", "01")``."""
        inputs = 0
        for i, ch in enumerate(input_str):
            if ch not in _CHAR_TO_FIELD:
                raise ValueError(f"invalid cube character {ch!r} in {input_str!r}")
            inputs |= _CHAR_TO_FIELD[ch] << (2 * i)
        outputs = 0
        for k, ch in enumerate(output_str):
            if ch in ("1", "4"):
                outputs |= 1 << k
            elif ch not in ("0", "-", "2", "~"):
                raise ValueError(f"invalid output character {ch!r} in {output_str!r}")
        return cls(len(input_str), inputs, outputs, n_outputs=len(output_str))

    @classmethod
    def full(cls, n_inputs: int, n_outputs: int = 1, outputs: Optional[int] = None) -> "Cube":
        """The universal cube (all inputs ``-``), asserting ``outputs`` (default: all)."""
        if outputs is None:
            outputs = full_output_mask(n_outputs)
        return cls(n_inputs, full_input_mask(n_inputs), outputs, n_outputs)

    @classmethod
    def from_minterm(cls, minterm: int, n_inputs: int, n_outputs: int = 1,
                     outputs: Optional[int] = None) -> "Cube":
        """The single-minterm cube for integer ``minterm`` (bit ``i`` = variable ``i``)."""
        inputs = 0
        for i in range(n_inputs):
            field = BIT_ONE if (minterm >> i) & 1 else BIT_ZERO
            inputs |= field << (2 * i)
        if outputs is None:
            outputs = full_output_mask(n_outputs)
        return cls(n_inputs, inputs, outputs, n_outputs)

    @classmethod
    def from_literals(cls, n_inputs: int, literals: Iterable[Tuple[int, bool]],
                      n_outputs: int = 1, outputs: Optional[int] = None) -> "Cube":
        """Build a cube from ``(variable, positive)`` literal pairs.

        ``(2, False)`` contributes the literal ``~x2``.
        """
        inputs = full_input_mask(n_inputs)
        for var, positive in literals:
            if not 0 <= var < n_inputs:
                raise ValueError(f"variable {var} out of range for {n_inputs} inputs")
            keep = BIT_ONE if positive else BIT_ZERO
            inputs &= ~(BIT_DASH << (2 * var))
            inputs |= keep << (2 * var)
        if outputs is None:
            outputs = full_output_mask(n_outputs)
        return cls(n_inputs, inputs, outputs, n_outputs)

    # ------------------------------------------------------------------
    # field access
    # ------------------------------------------------------------------
    def field(self, var: int) -> int:
        """The two-bit positional field of variable ``var``."""
        return (self.inputs >> (2 * var)) & 0b11

    def with_field(self, var: int, field: int) -> "Cube":
        """A copy of this cube with variable ``var`` set to ``field``."""
        cleared = self.inputs & ~(0b11 << (2 * var))
        return Cube(self.n_inputs, cleared | ((field & 0b11) << (2 * var)),
                    self.outputs, self.n_outputs)

    def with_outputs(self, outputs: int) -> "Cube":
        """A copy of this cube with a different output part."""
        return Cube(self.n_inputs, self.inputs, outputs, self.n_outputs)

    def literals(self) -> Iterator[Tuple[int, bool]]:
        """Yield ``(variable, positive)`` for every literal in the product term."""
        for var in range(self.n_inputs):
            f = self.field(var)
            if f == BIT_ONE:
                yield (var, True)
            elif f == BIT_ZERO:
                yield (var, False)

    def output_indices(self) -> Iterator[int]:
        """Yield the indices of outputs this cube asserts."""
        k, rest = 0, self.outputs
        while rest:
            if rest & 1:
                yield k
            k += 1
            rest >>= 1

    # ------------------------------------------------------------------
    # predicates & measures
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the cube contains no (minterm, output) pair."""
        if self.outputs == 0:
            return True
        inputs = self.inputs
        for _ in range(self.n_inputs):
            if inputs & 0b11 == 0:
                return True
            inputs >>= 2
        return False

    def is_full(self) -> bool:
        """True when every input field is ``-`` and every output is asserted."""
        return (self.inputs == full_input_mask(self.n_inputs)
                and self.outputs == full_output_mask(self.n_outputs))

    def n_literals(self) -> int:
        """Number of input literals (non-dash, non-empty fields); memoized."""
        if self._n_literals is None:
            count = 0
            inputs = self.inputs
            for _ in range(self.n_inputs):
                if inputs & 0b11 in (BIT_ZERO, BIT_ONE):
                    count += 1
                inputs >>= 2
            self._n_literals = count
        return self._n_literals

    def n_dashes(self) -> int:
        """Number of don't-care input fields; memoized."""
        if self._n_dashes is None:
            count = 0
            inputs = self.inputs
            for _ in range(self.n_inputs):
                if inputs & 0b11 == BIT_DASH:
                    count += 1
                inputs >>= 2
            self._n_dashes = count
        return self._n_dashes

    def size(self) -> int:
        """Number of (minterm, output) pairs the cube contains."""
        if self.is_empty():
            return 0
        return (1 << self.n_dashes()) * bin(self.outputs).count("1")

    def contains(self, other: "Cube") -> bool:
        """True when ``other`` is a (not necessarily proper) sub-cube of ``self``."""
        return (self.inputs | other.inputs) == self.inputs and \
               (self.outputs | other.outputs) == self.outputs

    def contains_minterm(self, minterm: int, output: int = 0) -> bool:
        """True when the integer ``minterm`` of ``output`` lies inside the cube."""
        if not (self.outputs >> output) & 1:
            return False
        for i in range(self.n_inputs):
            bit = BIT_ONE if (minterm >> i) & 1 else BIT_ZERO
            if not self.field(i) & bit:
                return False
        return True

    def evaluate(self, assignment: Iterable[int]) -> bool:
        """Evaluate the product term on a 0/1 assignment vector (input part only)."""
        for i, value in enumerate(assignment):
            bit = BIT_ONE if value else BIT_ZERO
            if not self.field(i) & bit:
                return False
        return True

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """The largest cube contained in both, or ``None`` when disjoint."""
        inputs = self.inputs & other.inputs
        outputs = self.outputs & other.outputs
        result = Cube(self.n_inputs, inputs, outputs, self.n_outputs)
        return None if result.is_empty() else result

    def intersects(self, other: "Cube") -> bool:
        """True when the cubes share at least one (minterm, output) pair."""
        if not self.outputs & other.outputs:
            return False
        inputs = self.inputs & other.inputs
        for _ in range(self.n_inputs):
            if inputs & 0b11 == 0:
                return False
            inputs >>= 2
        return True

    def distance(self, other: "Cube") -> int:
        """Number of input variables in which the cubes conflict.

        The output part adds one when the output sets are disjoint.
        Distance 0 means the cubes intersect; distance 1 means a
        consensus exists.
        """
        dist = 0
        inputs = self.inputs & other.inputs
        for _ in range(self.n_inputs):
            if inputs & 0b11 == 0:
                dist += 1
            inputs >>= 2
        if not self.outputs & other.outputs:
            dist += 1
        return dist

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus cube when the distance is exactly 1, else ``None``."""
        conflict_var = None
        n_conflicts = 0
        for var in range(self.n_inputs):
            if (self.field(var) & other.field(var)) == 0:
                conflict_var = var
                n_conflicts += 1
                if n_conflicts > 1:
                    return None
        out = self.outputs & other.outputs
        if n_conflicts == 1 and out:
            merged = self.intersection_inputs(other)
            merged |= BIT_DASH << (2 * conflict_var)
            return Cube(self.n_inputs, merged, out, self.n_outputs)
        if n_conflicts == 0 and not out:
            # output-part consensus: shared input part, union of outputs
            inputs = self.inputs & other.inputs
            cube = Cube(self.n_inputs, inputs, self.outputs | other.outputs, self.n_outputs)
            return None if cube.is_empty() else cube
        return None

    def intersection_inputs(self, other: "Cube") -> int:
        """Bitwise AND of the input parts (helper for :meth:`consensus`)."""
        return self.inputs & other.inputs

    def supercube(self, other: "Cube") -> "Cube":
        """The smallest cube containing both."""
        return Cube(self.n_inputs, self.inputs | other.inputs,
                    self.outputs | other.outputs, self.n_outputs)

    def cofactor(self, other: "Cube") -> Optional["Cube"]:
        """The Shannon cofactor of ``self`` with respect to cube ``other``.

        Returns ``None`` when the cubes do not intersect (the cofactor
        is empty).  Uses the standard positional rule: conflicting
        fields empty the result, fields where ``other`` is specific are
        raised to don't-care.
        """
        if not self.intersects(other):
            return None
        inputs = self.inputs | (~other.inputs & full_input_mask(self.n_inputs))
        outputs = self.outputs | (~other.outputs & full_output_mask(self.n_outputs))
        return Cube(self.n_inputs, inputs, outputs, self.n_outputs)

    def complement_cubes(self) -> Iterator["Cube"]:
        """Disjoint-sharp complement of the cube's input part.

        Yields cubes whose union is exactly the set of input minterms
        *outside* this cube, each carrying this cube's output part.
        """
        prefix = full_input_mask(self.n_inputs)
        for var in range(self.n_inputs):
            f = self.field(var)
            if f in (BIT_ZERO, BIT_ONE):
                flipped = BIT_ONE if f == BIT_ZERO else BIT_ZERO
                inputs = (prefix & ~(0b11 << (2 * var))) | (flipped << (2 * var))
                yield Cube(self.n_inputs, inputs, self.outputs, self.n_outputs)
                prefix = (prefix & ~(0b11 << (2 * var))) | (f << (2 * var))

    def minterms(self, output: Optional[int] = None) -> Iterator[int]:
        """Enumerate the integer minterms of the input part.

        When ``output`` is given, yields nothing unless the cube asserts
        that output.  Exponential in the dash count — intended for small
        functions and for test oracles.
        """
        if self.is_empty():
            return
        if output is not None and not (self.outputs >> output) & 1:
            return
        free = [v for v in range(self.n_inputs) if self.field(v) == BIT_DASH]
        base = 0
        for v in range(self.n_inputs):
            if self.field(v) == BIT_ONE:
                base |= 1 << v
        for combo in range(1 << len(free)):
            m = base
            for j, v in enumerate(free):
                if (combo >> j) & 1:
                    m |= 1 << v
            yield m

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (self.n_inputs == other.n_inputs and self.n_outputs == other.n_outputs
                and self.inputs == other.inputs and self.outputs == other.outputs)

    def __hash__(self) -> int:
        return hash((self.n_inputs, self.n_outputs, self.inputs, self.outputs))

    def __repr__(self) -> str:
        return f"Cube({self.input_string()!r}, {self.output_string()!r})"

    def input_string(self) -> str:
        """The Berkeley PLA input column string, e.g. ``"10-"``."""
        return "".join(_FIELD_TO_CHAR[self.field(v)] for v in range(self.n_inputs))

    def output_string(self) -> str:
        """The Berkeley PLA output column string, e.g. ``"01"``."""
        return "".join("1" if (self.outputs >> k) & 1 else "0"
                       for k in range(self.n_outputs))

    def __str__(self) -> str:
        return f"{self.input_string()} {self.output_string()}"
