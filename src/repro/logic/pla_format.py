"""Berkeley ``.pla`` file format reader and writer.

The MCNC benchmark suite the paper evaluates ([8] in the paper) ships
as Berkeley PLA files.  This module parses the common subset used by
Espresso: ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type`` (``f``,
``fd``, ``fr``, ``fdr``), cube rows, comments and ``.e``/``.end``.

Output-plane characters follow Espresso semantics:

========  ================================================
char      meaning for (row, output)
========  ================================================
``1``/``4``  the row belongs to the output's ON-set
``0``        not in this row (``fd``) / OFF-set member (``fr``)
``-``/``2``  don't care (``fd``/``fdr`` types)
``~``        no meaning (placeholder)
========  ================================================
"""

from __future__ import annotations

from typing import List, Optional, TextIO, Union

from repro.errors import ReproInputError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction


class PLAFormatError(ReproInputError):
    """Raised on malformed PLA input (with file/line context)."""


def _int_arg(parts: List[str], what: str, name: str,
             line_no: int) -> int:
    """Parse a directive's integer argument, or raise with context."""
    if len(parts) < 2:
        raise PLAFormatError(f"{what} needs an argument", source=name,
                             line=line_no)
    try:
        value = int(parts[1])
    except ValueError:
        raise PLAFormatError(
            f"{what} argument {parts[1]!r} is not an integer",
            source=name, line=line_no) from None
    if value < 0:
        raise PLAFormatError(f"{what} must be non-negative, got {value}",
                             source=name, line=line_no)
    return value


def parse_pla(source: Union[str, TextIO], name: str = "pla") -> BooleanFunction:
    """Parse PLA text (a string or file object) into a :class:`BooleanFunction`.

    Malformed input — truncated directives, non-integer ``.i``/``.o``
    arguments, bad cube characters, wrong column counts — raises
    :class:`PLAFormatError` (a :class:`repro.errors.ReproInputError`)
    carrying ``name`` and the 1-based line number.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source

    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    declared_products: Optional[int] = None
    pla_type = "fd"
    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None
    rows: List[tuple] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                n_inputs = _int_arg(parts, ".i", name, line_no)
            elif directive == ".o":
                n_outputs = _int_arg(parts, ".o", name, line_no)
            elif directive == ".p":
                declared_products = _int_arg(parts, ".p", name, line_no)
            elif directive == ".ilb":
                input_labels = parts[1:]
            elif directive == ".ob":
                output_labels = parts[1:]
            elif directive == ".type":
                if len(parts) < 2:
                    raise PLAFormatError(".type needs an argument",
                                         source=name, line=line_no)
                pla_type = parts[1]
                if pla_type not in ("f", "fd", "fr", "fdr"):
                    raise PLAFormatError(
                        f"unsupported .type {pla_type!r}", source=name,
                        line=line_no)
            elif directive in (".e", ".end"):
                break
            else:
                # tolerated-but-ignored directives (.phase, .pair, ...)
                continue
        else:
            parts = line.split()
            if len(parts) == 1 and n_outputs in (None, 1):
                parts.append("1")
            if len(parts) != 2:
                # allow "110 1 0" style with per-output spacing
                parts = [parts[0], "".join(parts[1:])]
            rows.append((line_no, parts[0], parts[1]))

    if n_inputs is None or n_outputs is None:
        raise PLAFormatError("missing .i or .o directive", source=name)

    on = Cover(n_inputs, n_outputs)
    dc = Cover(n_inputs, n_outputs)
    off = Cover(n_inputs, n_outputs)
    for line_no, in_str, out_str in rows:
        if len(in_str) != n_inputs:
            raise PLAFormatError(
                f"expected {n_inputs} input columns, got {len(in_str)}",
                source=name, line=line_no)
        if len(out_str) != n_outputs:
            raise PLAFormatError(
                f"expected {n_outputs} output columns, got {len(out_str)}",
                source=name, line=line_no)
        on_mask = dc_mask = off_mask = 0
        for k, ch in enumerate(out_str):
            if ch in ("1", "4"):
                on_mask |= 1 << k
            elif ch in ("-", "2"):
                if pla_type in ("fd", "fdr", "f"):
                    dc_mask |= 1 << k
            elif ch == "0":
                if pla_type in ("fr", "fdr"):
                    off_mask |= 1 << k
            elif ch == "~":
                continue
            else:
                raise PLAFormatError(f"bad output char {ch!r}",
                                     source=name, line=line_no)
        try:
            base = Cube.from_string(in_str, "0" * n_outputs)
        except ValueError as exc:
            raise PLAFormatError(str(exc), source=name,
                                 line=line_no) from None
        if on_mask:
            on.append(Cube(n_inputs, base.inputs, on_mask, n_outputs))
        if dc_mask:
            dc.append(Cube(n_inputs, base.inputs, dc_mask, n_outputs))
        if off_mask:
            off.append(Cube(n_inputs, base.inputs, off_mask, n_outputs))

    if declared_products is not None and declared_products != len(rows):
        # Espresso treats .p as advisory; we do too but keep the check soft.
        pass

    function = BooleanFunction(on, dc, name=name,
                               input_labels=input_labels,
                               output_labels=output_labels)
    if pla_type in ("fr", "fdr") and len(off):
        function._off_set = off  # trusted explicit OFF-set
    return function


def write_pla(function: BooleanFunction, include_labels: bool = True) -> str:
    """Serialize a function's ON/DC sets to Berkeley ``fd``-type PLA text."""
    lines = [f".i {function.n_inputs}", f".o {function.n_outputs}"]
    if include_labels:
        lines.append(".ilb " + " ".join(function.input_labels))
        lines.append(".ob " + " ".join(function.output_labels))
    lines.append(".type fd")
    n_rows = function.on_set.n_cubes() + function.dc_set.n_cubes()
    lines.append(f".p {n_rows}")
    for cube in function.on_set.cubes:
        lines.append(f"{cube.input_string()} {cube.output_string()}")
    for cube in function.dc_set.cubes:
        out = "".join("-" if (cube.outputs >> k) & 1 else "0"
                      for k in range(function.n_outputs))
        lines.append(f"{cube.input_string()} {out}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
