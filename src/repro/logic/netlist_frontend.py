"""A tiny netlist front end: named multi-level expression modules.

Lets examples and workloads describe realistic multi-level circuits
textually instead of as flat covers::

    module alu_slice
    input a b cin op
    output sum cout
    p    = a ^ b
    g    = a & b
    sel  = p & ~op | g & op
    sum  = p ^ cin
    cout = g | p & cin

Wires are single-assignment; every right-hand side is a Boolean
expression over inputs and previously-defined wires (the module is a
DAG by construction).  The parsed :class:`Module` evaluates directly,
flattens to a single :class:`~repro.logic.cover.Cover`, or converts to
a :class:`~repro.mapping.partition.PartitionResult` (one block per
assignment) for the fabric and FPGA flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.espresso.espresso import minimize
from repro.logic.complement import complement_cover
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.expr import parse_expression
from repro.logic.function import BooleanFunction
from repro.mapping.partition import Block, PartitionResult


class NetlistError(ValueError):
    """Raised on malformed module text."""


@dataclass
class Assignment:
    """One ``wire = expression`` statement."""

    target: str
    expression: str
    cover: Cover            # over the assignment's support signals
    support: List[str]      # signal names, in the cover's input order


@dataclass
class Module:
    """A parsed multi-level module.

    Attributes
    ----------
    name:
        Module name.
    inputs, outputs:
        Port lists (outputs must be assigned wires).
    assignments:
        Statements in definition order (topological by construction).
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    assignments: List[Assignment]

    # ------------------------------------------------------------------
    def evaluate(self, values: Dict[str, int]) -> Dict[str, int]:
        """Evaluate all outputs from named input values."""
        signals = {name: int(values[name]) for name in self.inputs}
        for assignment in self.assignments:
            vector = [signals[s] for s in assignment.support]
            signals[assignment.target] = \
                1 if assignment.cover.evaluate(vector)[0] else 0
        return {name: signals[name] for name in self.outputs}

    def evaluate_vector(self, vector: Sequence[int]) -> List[int]:
        """Positional evaluation in port order."""
        values = dict(zip(self.inputs, vector))
        result = self.evaluate(values)
        return [result[name] for name in self.outputs]

    # ------------------------------------------------------------------
    def flatten(self) -> BooleanFunction:
        """Collapse to a single flat function over the primary inputs.

        Wires are eliminated by substitution (AND of covers through the
        expression layer); practical for the module sizes examples use.
        """
        index = {name: i for i, name in enumerate(self.inputs)}
        n = len(self.inputs)
        flat: Dict[str, Cover] = {}
        for name in self.inputs:
            flat[name] = Cover(n, 1, [Cube.from_literals(n, [(index[name],
                                                              True)])])
        for assignment in self.assignments:
            cover = Cover(n, 1)
            for cube in assignment.cover.cubes:
                term = Cover.universe(n)
                for var, positive in cube.literals():
                    signal_cover = flat[assignment.support[var]]
                    factor = signal_cover if positive else \
                        complement_cover(signal_cover)
                    term = _and_covers(term, factor)
                cover = (cover + term)
            flat[assignment.target] = cover.single_cube_containment()

        on = Cover(n, len(self.outputs))
        for k, name in enumerate(self.outputs):
            for cube in flat[name].cubes:
                on.append(Cube(n, cube.inputs, 1 << k, len(self.outputs)))
        function = BooleanFunction(on.merge_identical_inputs(),
                                   name=self.name,
                                   input_labels=self.inputs,
                                   output_labels=self.outputs)
        return function

    def to_partition(self, do_minimize: bool = True) -> PartitionResult:
        """One fabric/FPGA block per assignment (signals become nets)."""
        rename = {name: f"{self.name}.x{i}"
                  for i, name in enumerate(self.inputs)}
        for k, name in enumerate(self.outputs):
            rename[name] = f"{self.name}.y{k}"
        counter = 0
        for assignment in self.assignments:
            if assignment.target not in rename:
                rename[assignment.target] = f"{self.name}.n{counter}"
                counter += 1

        blocks: List[Block] = []
        for i, assignment in enumerate(self.assignments):
            cover = assignment.cover
            if do_minimize:
                cover = minimize(BooleanFunction(cover))
            blocks.append(Block(
                name=f"{self.name}.blk{i}",
                cover=cover,
                input_signals=[rename[s] for s in assignment.support],
                output_signals=[rename[assignment.target]],
            ))
        return PartitionResult(
            blocks=blocks,
            primary_inputs=[rename[s] for s in self.inputs],
            primary_outputs=[rename[s] for s in self.outputs],
        )


def _and_covers(a: Cover, b: Cover) -> Cover:
    result = Cover(a.n_inputs, 1)
    for ca in a.cubes:
        for cb in b.cubes:
            inter = ca.intersection(cb)
            if inter is not None:
                result.append(inter)
    return result.single_cube_containment()


def parse_module(text: str) -> Module:
    """Parse module text (see the module docstring for the grammar)."""
    name = "module"
    inputs: List[str] = []
    outputs: List[str] = []
    assignments: List[Assignment] = []
    defined: List[str] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("module "):
            name = line.split(None, 1)[1].strip()
        elif line.startswith("input "):
            inputs.extend(line.split()[1:])
        elif line.startswith("output "):
            outputs.extend(line.split()[1:])
        elif "=" in line:
            target, expression = (part.strip()
                                  for part in line.split("=", 1))
            if not target.isidentifier():
                raise NetlistError(f"line {line_no}: bad wire name "
                                   f"{target!r}")
            if target in defined or target in inputs:
                raise NetlistError(f"line {line_no}: {target!r} assigned "
                                   f"twice (wires are single-assignment)")
            available = inputs + defined
            support = [s for s in available
                       if _mentions(expression, s)]
            if not support:
                support = available[:1] if available else []
            if not support:
                raise NetlistError(f"line {line_no}: no inputs declared "
                                   f"before first assignment")
            try:
                cover = parse_expression(expression, support)
            except ValueError as exc:
                raise NetlistError(f"line {line_no}: {exc}") from exc
            assignments.append(Assignment(target, expression, cover,
                                          support))
            defined.append(target)
        else:
            raise NetlistError(f"line {line_no}: cannot parse {line!r}")

    if not inputs:
        raise NetlistError("module declares no inputs")
    if not outputs:
        raise NetlistError("module declares no outputs")
    for out in outputs:
        if out not in defined:
            raise NetlistError(f"output {out!r} is never assigned")
    return Module(name, inputs, outputs, assignments)


def _mentions(expression: str, signal: str) -> bool:
    from repro.logic.expr import tokenize
    return signal in tokenize(expression)
