"""A small Boolean-expression front end.

``parse_expression("a & ~b | b & c", ["a", "b", "c"])`` produces a
:class:`~repro.logic.cover.Cover`, so examples and tests can state
functions readably instead of spelling out cube strings.

Grammar (precedence low to high)::

    expr   := term ('|' term)*           # OR
    term   := xorop ('&'? xorop)*        # AND ('&' optional by juxtaposition is NOT supported)
    xorop  := factor ('^' factor)*       # XOR
    factor := '~' factor | '(' expr ')' | '0' | '1' | identifier
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.logic.complement import complement_cover
from repro.logic.cover import Cover
from repro.logic.cube import Cube

_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|[01()|&^~])")


class ExpressionError(ValueError):
    """Raised on syntax errors or unknown identifiers."""


def tokenize(text: str) -> List[str]:
    """Split expression text into tokens; raises on stray characters."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise ExpressionError(f"unexpected character at {text[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], variables: Sequence[str]):
        self.tokens = tokens
        self.pos = 0
        self.variables = list(variables)
        self.index = {name: i for i, name in enumerate(self.variables)}
        self.n = len(self.variables)

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.pos += 1
        return token

    # each rule returns a single-output Cover over self.n inputs
    def expr(self) -> Cover:
        cover = self.term()
        while self.peek() == "|":
            self.take()
            cover = cover + self.term()
        return cover.single_cube_containment()

    def term(self) -> Cover:
        cover = self.xorop()
        while self.peek() == "&":
            self.take()
            cover = _and_covers(cover, self.xorop())
        return cover

    def xorop(self) -> Cover:
        cover = self.factor()
        while self.peek() == "^":
            self.take()
            rhs = self.factor()
            cover = _xor_covers(cover, rhs)
        return cover

    def factor(self) -> Cover:
        token = self.take()
        if token == "~":
            return complement_cover(self.factor())
        if token == "(":
            inner = self.expr()
            if self.take() != ")":
                raise ExpressionError("expected ')'")
            return inner
        if token == "0":
            return Cover.empty(self.n, 1)
        if token == "1":
            return Cover.universe(self.n, 1)
        if token in self.index:
            var = self.index[token]
            return Cover(self.n, 1, [Cube.from_literals(self.n, [(var, True)])])
        raise ExpressionError(f"unknown identifier {token!r}")


def _and_covers(a: Cover, b: Cover) -> Cover:
    result = Cover(a.n_inputs, 1)
    for ca in a.cubes:
        for cb in b.cubes:
            inter = ca.intersection(cb)
            if inter is not None:
                result.append(inter)
    return result.single_cube_containment()


def _xor_covers(a: Cover, b: Cover) -> Cover:
    not_a = complement_cover(a)
    not_b = complement_cover(b)
    return (_and_covers(a, not_b) + _and_covers(not_a, b)).single_cube_containment()


def parse_expression(text: str, variables: Sequence[str]) -> Cover:
    """Parse ``text`` over the given variable names into a single-output cover.

    The variable order fixes the input index of each name.
    """
    parser = _Parser(tokenize(text), variables)
    cover = parser.expr()
    if parser.peek() is not None:
        raise ExpressionError(f"trailing tokens starting at {parser.peek()!r}")
    return cover
