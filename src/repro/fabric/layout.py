"""Levelization of partitioned logic for the cascaded-PLA fabric.

Blocks from :class:`repro.mapping.partition.PartitionResult` form a
DAG; the fabric executes them in *stages* (all blocks of a level share
one PLA column of the fabric).  Between consecutive stages a crosspoint
array carries the **live bus**: every signal that is still needed by a
later stage or is a primary output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.mapping.partition import Block, PartitionResult


@dataclass
class FabricLayout:
    """Stage assignment plus per-boundary live buses.

    Attributes
    ----------
    stages:
        ``stages[s]`` — blocks executing at stage ``s``.
    buses:
        ``buses[s]`` — ordered signal names crossing the boundary
        *into* stage ``s`` (bus 0 carries the primary inputs).  There
        is one final bus after the last stage carrying the primary
        outputs.
    primary_inputs, primary_outputs:
        Global I/O names.
    """

    stages: List[List[Block]]
    buses: List[List[str]]
    primary_inputs: List[str]
    primary_outputs: List[str]

    @property
    def n_stages(self) -> int:
        """Number of PLA stages."""
        return len(self.stages)

    def stage_of(self, block_name: str) -> int:
        """The stage index executing a block."""
        for s, blocks in enumerate(self.stages):
            if any(b.name == block_name for b in blocks):
                return s
        raise KeyError(block_name)


def levelize(partition: PartitionResult) -> FabricLayout:
    """Assign blocks to stages and compute the live buses.

    A block's level is one past the deepest block driving any of its
    inputs (primary inputs are level 0), so stage ``s`` only consumes
    signals available on bus ``s``.
    """
    producer: Dict[str, Block] = {}
    for block in partition.blocks:
        for signal in block.output_signals:
            producer[signal] = block

    level: Dict[str, int] = {}

    def block_level(block: Block) -> int:
        if block.name in level:
            return level[block.name]
        depth = 0
        for signal in block.input_signals:
            if signal in producer:
                depth = max(depth, block_level(producer[signal]) + 1)
        level[block.name] = depth
        return depth

    n_stages = 0
    for block in partition.blocks:
        n_stages = max(n_stages, block_level(block) + 1)

    stages: List[List[Block]] = [[] for _ in range(n_stages)]
    for block in partition.blocks:
        stages[level[block.name]].append(block)

    # Liveness: a signal is on bus s when it is produced before stage s
    # (or is a primary input) and consumed at stage >= s (or is a
    # primary output).
    consumed_at: Dict[str, List[int]] = {}
    for s, blocks in enumerate(stages):
        for block in blocks:
            for signal in block.input_signals:
                consumed_at.setdefault(signal, []).append(s)

    buses: List[List[str]] = []
    for s in range(n_stages + 1):
        bus: List[str] = []
        for signal in _all_signals(partition):
            born = -1 if signal in partition.primary_inputs else \
                level[producer[signal].name] if signal in producer else None
            if born is None or born >= s:
                continue
            last_use = max(consumed_at.get(signal, [-1]), default=-1)
            is_po = signal in partition.primary_outputs
            if last_use >= s or (is_po and s <= n_stages):
                bus.append(signal)
        buses.append(bus)

    return FabricLayout(
        stages=stages,
        buses=buses,
        primary_inputs=list(partition.primary_inputs),
        primary_outputs=list(partition.primary_outputs),
    )


def _all_signals(partition: PartitionResult) -> List[str]:
    signals: List[str] = list(partition.primary_inputs)
    seen: Set[str] = set(signals)
    for block in partition.blocks:
        for signal in block.output_signals:
            if signal not in seen:
                seen.add(signal)
                signals.append(signal)
    return signals
