"""Delay analysis of the cascaded PLA/crossbar fabric.

The flat two-level PLA of a wide function has enormous OR-plane columns
(one crosspoint per product row), so its evaluate delay grows linearly
with the product count; the cascade replaces that with several small
PLAs plus crossbar traversals.  This module quantifies the trade: the
fabric's critical path is the sum over stages of the slowest stage PLA
plus the RC of the crossbar it reads through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.timing import (DEFAULT_TIMING, PLATimingModel,
                               TimingParameters, as_timing)
from repro.fabric.compiler import CompiledFabric


@dataclass
class FabricTimingReport:
    """Per-stage and total delays of a compiled fabric.

    Attributes
    ----------
    stage_delays:
        Per stage: slowest member-PLA evaluate delay [s].
    crossbar_delays:
        Per stage: RC traversal delay of the incoming crossbar [s].
    critical_path_delay:
        Total combinational delay through all stages [s].
    """

    stage_delays: List[float]
    crossbar_delays: List[float]
    critical_path_delay: float

    def max_frequency(self) -> float:
        """Achievable (combinational) frequency [Hz]."""
        return 1.0 / self.critical_path_delay


def analyze_fabric_timing(fabric: CompiledFabric,
                          timing: TimingParameters = DEFAULT_TIMING
                          ) -> FabricTimingReport:
    """Critical-path analysis of a compiled fabric.

    ``timing`` may also be a :class:`~repro.tech.TechDescriptor`.
    """
    timing = as_timing(timing)
    stage_delays: List[float] = []
    crossbar_delays: List[float] = []
    total = 0.0
    for stage in fabric.stages:
        # one pass-transistor in series with the bus wire spanning the
        # crossbar's vertical extent
        r_on = timing.device.r_on / max(timing.device.tubes_per_device, 1)
        c_bus = (stage.crossbar.n_vertical * timing.c_wire_per_cell
                 + timing.device.c_junction * stage.crossbar.n_horizontal)
        crossbar_delay = timing.ln2 * r_on * c_bus
        crossbar_delays.append(crossbar_delay)

        slowest = 0.0
        for _block, pla in stage.plas:
            model = PLATimingModel(pla.n_inputs, pla.n_outputs,
                                   pla.n_products, timing)
            slowest = max(slowest, model.evaluate_delay())
        stage_delays.append(slowest)
        total += crossbar_delay + slowest

    if total <= 0.0:
        total = timing.buffer_delay
    return FabricTimingReport(stage_delays=stage_delays,
                              crossbar_delays=crossbar_delays,
                              critical_path_delay=total)


def flat_pla_delay(n_inputs: int, n_outputs: int, n_products: int,
                   timing: TimingParameters = DEFAULT_TIMING) -> float:
    """Evaluate delay of the equivalent flat two-level PLA [s]."""
    return PLATimingModel(n_inputs, n_outputs, n_products,
                          as_timing(timing)).evaluate_delay()


def pipelined_frequency(report: FabricTimingReport) -> float:
    """Clock frequency with registers at every stage boundary [Hz].

    The cascade's structural payoff: once each stage is registered the
    clock is set by the *slowest single stage* (PLA + its crossbar),
    not the whole combinational path — so deep fabrics keep the clock
    of a shallow one at the cost of latency in cycles.
    """
    per_stage = [stage + crossbar
                 for stage, crossbar in zip(report.stage_delays,
                                            report.crossbar_delays)]
    worst = max(per_stage, default=report.critical_path_delay)
    if worst <= 0:
        worst = report.critical_path_delay
    return 1.0 / worst
