"""Compiling partitioned logic onto the cascaded PLA/crossbar fabric.

Each stage hosts one :class:`~repro.core.pla.AmbipolarPLA` per block;
each stage boundary hosts one :class:`~repro.core.interconnect.
CrosspointArray` whose horizontal wires carry the live bus and whose
vertical wires are the next stage's PLA input pins (plus feed-through
lanes for signals that must survive to a later bus).  Simulation
actually drives the crossbars (:meth:`CrosspointArray.propagate`), so a
mis-programmed crosspoint shows up as a functional failure — the same
observability the physical fabric would give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.area import CNFET_AMBIPOLAR, Technology, interconnect_area, pla_area
from repro.core.device import DEFAULT_PARAMETERS, DeviceParameters
from repro.core.interconnect import CrosspointArray
from repro.core.pla import AmbipolarPLA
from repro.fabric.layout import FabricLayout, levelize
from repro.mapping.partition import Block, PartitionResult
from repro.tech import TechDescriptor


@dataclass
class FabricStage:
    """One stage: its PLAs and the crossbar feeding them.

    Attributes
    ----------
    plas:
        ``(block, pla)`` pairs executing at this stage.
    crossbar:
        The crosspoint array between the incoming bus and this stage's
        PLA input pins + feed-through lanes.
    bus_in:
        Signal names on the crossbar's horizontal wires.
    pin_signals:
        Signal names expected on each vertical wire (PLA pins first,
        then feed-through lanes).
    n_pla_pins:
        Vertical wires consumed by PLA inputs (the rest feed through).
    """

    plas: List[Tuple[Block, AmbipolarPLA]]
    crossbar: CrosspointArray
    bus_in: List[str]
    pin_signals: List[str]
    n_pla_pins: int


class CompiledFabric:
    """A fully-programmed cascaded PLA/crossbar fabric."""

    def __init__(self, layout: FabricLayout, stages: List[FabricStage],
                 params: DeviceParameters):
        self.layout = layout
        self.stages = stages
        self.params = params

    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of PLA stages."""
        return len(self.stages)

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Evaluate primary outputs from named primary-input values.

        Every stage boundary is crossed through its programmed
        crossbar: the live bus drives the horizontal wires and the PLA
        pins / feed-through lanes are *read back* from the vertical
        wires.
        """
        values: Dict[str, int] = {}
        for signal in self.layout.primary_inputs:
            values[signal] = int(assignment[signal])

        for stage in self.stages:
            driven = {("h", i): values[signal]
                      for i, signal in enumerate(stage.bus_in)}
            routed = stage.crossbar.propagate(driven)
            pin_values: List[int] = []
            for v, signal in enumerate(stage.pin_signals):
                wire = ("v", v)
                if wire not in routed:
                    raise RuntimeError(
                        f"crossbar left pin {v} ({signal}) floating")
                pin_values.append(routed[wire])
            # feed-through lanes really carry their signals: overwrite the
            # value map from the far side of the crossbar so a missing
            # crosspoint is observable as a floating wire
            for v in range(stage.n_pla_pins, len(stage.pin_signals)):
                values[stage.pin_signals[v]] = pin_values[v]
            offset = 0
            for block, pla in stage.plas:
                vector = pin_values[offset:offset + block.n_inputs]
                offset += block.n_inputs
                outputs = pla.evaluate(vector)
                for signal, bit in zip(block.output_signals, outputs):
                    values[signal] = bit

        return {signal: values[signal]
                for signal in self.layout.primary_outputs}

    def evaluate_vector(self, vector: Sequence[int]) -> List[int]:
        """Positional evaluation (primary inputs in declaration order)."""
        assignment = dict(zip(self.layout.primary_inputs, vector))
        result = self.evaluate(assignment)
        return [result[signal] for signal in self.layout.primary_outputs]

    # ------------------------------------------------------------------
    def pla_cells(self) -> int:
        """Crosspoints in all PLA planes."""
        return sum(pla.n_cells()
                   for stage in self.stages for _b, pla in stage.plas)

    def crossbar_cells(self) -> int:
        """Crosspoints in all interconnect arrays."""
        return sum(stage.crossbar.n_cells() for stage in self.stages)

    def total_cells(self) -> int:
        """All fabric crosspoints (PLA + interconnect)."""
        return self.pla_cells() + self.crossbar_cells()

    def area_l2(self, technology: Technology = CNFET_AMBIPOLAR) -> float:
        """Total fabric area under the Table 1 cell model.

        ``technology`` may be a :class:`Technology` or a
        :class:`~repro.tech.TechDescriptor`.
        """
        total = 0.0
        for stage in self.stages:
            for _block, pla in stage.plas:
                total += pla_area(technology, pla.n_inputs, pla.n_outputs,
                                  pla.n_products)
            total += interconnect_area(technology,
                                       stage.crossbar.n_horizontal,
                                       stage.crossbar.n_vertical)
        return total

    def stage_summaries(self) -> List[Dict[str, int]]:
        """Per-stage accounting for reports."""
        summaries = []
        for s, stage in enumerate(self.stages):
            summaries.append({
                "stage": s,
                "blocks": len(stage.plas),
                "bus_width": len(stage.bus_in),
                "pla_cells": sum(pla.n_cells() for _b, pla in stage.plas),
                "crossbar_cells": stage.crossbar.n_cells(),
            })
        return summaries

    def __repr__(self) -> str:
        return (f"CompiledFabric(stages={self.n_stages}, "
                f"cells={self.total_cells()})")


def compile_fabric(partition: PartitionResult,
                   params: DeviceParameters = DEFAULT_PARAMETERS
                   ) -> CompiledFabric:
    """Program the cascaded fabric for a partitioned function.

    ``params`` may also be a :class:`~repro.tech.TechDescriptor`, in
    which case the device parameters derive from it.
    """
    if isinstance(params, TechDescriptor):
        params = DeviceParameters.from_tech(params)
    layout = levelize(partition)
    stages: List[FabricStage] = []

    for s, blocks in enumerate(layout.stages):
        bus_in = layout.buses[s]
        bus_index = {signal: i for i, signal in enumerate(bus_in)}

        plas: List[Tuple[Block, AmbipolarPLA]] = []
        pin_signals: List[str] = []
        for block in blocks:
            plas.append((block, AmbipolarPLA.from_cover(block.cover,
                                                        params=params)))
            pin_signals.extend(block.input_signals)
        n_pla_pins = len(pin_signals)

        # feed-through lanes: bus signals still needed past this stage
        # that are not produced here
        produced_here = {signal for block in blocks
                         for signal in block.output_signals}
        next_bus = layout.buses[s + 1]
        for signal in next_bus:
            if signal not in produced_here:
                pin_signals.append(signal)

        crossbar = CrosspointArray(max(1, len(bus_in)),
                                   max(1, len(pin_signals)), params)
        for v, signal in enumerate(pin_signals):
            if signal not in bus_index:
                raise ValueError(
                    f"stage {s} pin {signal!r} is not on the incoming bus "
                    f"(layout bug)")
            crossbar.connect(bus_index[signal], v)
        stages.append(FabricStage(plas=plas, crossbar=crossbar,
                                  bus_in=bus_in, pin_signals=pin_signals,
                                  n_pla_pins=n_pla_pins))

    return CompiledFabric(layout, stages, params)
