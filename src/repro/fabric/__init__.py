"""The Fig 3 fabric at scale: cascaded PLAs with programmed crossbars.

Fig 3 of the paper interleaves GNOR PLAs with crosspoint interconnect
arrays so NOR planes can cascade into arbitrary multi-level logic.
This subpackage is the compiler for that fabric:

* :mod:`repro.fabric.layout` — levelize partitioned blocks into stages
  and size the inter-stage signal buses;
* :mod:`repro.fabric.compiler` — program one PLA per block and one
  crossbar per stage boundary, and simulate the whole fabric with real
  crosspoint propagation (not a lookup table).
"""

from repro.fabric.layout import FabricLayout, levelize
from repro.fabric.compiler import CompiledFabric, compile_fabric
from repro.fabric.timing import (FabricTimingReport, analyze_fabric_timing,
                                 flat_pla_delay, pipelined_frequency)

__all__ = [
    "FabricLayout",
    "levelize",
    "CompiledFabric",
    "compile_fabric",
    "FabricTimingReport",
    "analyze_fabric_timing",
    "flat_pla_delay",
    "pipelined_frequency",
]
