"""Mapping a Doppio-Espresso result onto a Whirlpool PLA."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.device import DEFAULT_PARAMETERS, DeviceParameters
from repro.espresso.doppio import DoppioResult
from repro.tech import TechDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.wpla import WhirlpoolPLA


def map_doppio_to_wpla(result: DoppioResult, n_outputs: int,
                       params: DeviceParameters = DEFAULT_PARAMETERS
                       ) -> "WhirlpoolPLA":
    # Imported here to break the core <-> mapping package cycle.
    from repro.core.pla import AmbipolarPLA
    from repro.core.wpla import WhirlpoolPLA
    """Build the 4-plane Whirlpool PLA a :class:`DoppioResult` describes.

    Each half-PLA is programmed from its group's phase-assigned cover,
    with the phase flags becoming output-buffer polarities (free on the
    GNOR architecture).  ``params`` may also be a
    :class:`~repro.tech.TechDescriptor`.
    """
    if isinstance(params, TechDescriptor):
        params = DeviceParameters.from_tech(params)
    half_a = AmbipolarPLA.from_cover(result.result_a.cover,
                                     result.result_a.phases, params)
    half_b = AmbipolarPLA.from_cover(result.result_b.cover,
                                     result.result_b.phases, params)
    return WhirlpoolPLA(half_a, half_b, result.group_a, result.group_b,
                        n_outputs)
