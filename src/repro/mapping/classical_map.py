"""Mapping a cover onto the classical dual-column PLA baseline.

A classical (Flash / EEPROM floating-gate) PLA cannot invert
internally, so every input is distributed on **two** columns — true and
complemented — doubling the input-column count (the ``2I`` of the
Table 1 area model).  Each crosspoint is a single-polarity device that
is either programmed on (CONNECT) or left off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.logic.cover import Cover
from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO


@dataclass
class ClassicalPersonality:
    """Programming of a classical dual-column NOR-NOR PLA.

    Attributes
    ----------
    n_inputs, n_outputs, n_products:
        Logical dimensions; the AND plane physically has ``2 *
        n_inputs`` columns (column ``2i`` carries ``x_i``, column
        ``2i + 1`` carries ``~x_i``).
    and_plane:
        ``and_plane[row][col]`` — True when the crosspoint device at
        (product row, physical input column) is programmed on.
    or_plane:
        ``or_plane[output][row]`` — True when product ``row`` feeds
        output ``output``.
    """

    n_inputs: int
    n_outputs: int
    n_products: int
    and_plane: List[List[bool]]
    or_plane: List[List[bool]]

    def n_input_columns(self) -> int:
        """Physical input columns (both polarities)."""
        return 2 * self.n_inputs

    def used_devices(self) -> int:
        """Crosspoints programmed on."""
        return (sum(sum(row) for row in self.and_plane)
                + sum(sum(row) for row in self.or_plane))

    def total_devices(self) -> int:
        """All crosspoints of both planes."""
        return self.n_products * (2 * self.n_inputs + self.n_outputs)


def map_cover_to_classical(cover: Cover) -> ClassicalPersonality:
    """Map a cover onto the dual-column baseline.

    A NOR row realizes the product term by connecting, for every
    literal, the column carrying the literal's *complement*: the row
    goes high exactly when all connected columns are low.
    """
    and_plane: List[List[bool]] = []
    for cube in cover.cubes:
        row = [False] * (2 * cover.n_inputs)
        for var in range(cover.n_inputs):
            field = cube.field(var)
            if field == BIT_ONE:        # literal x: connect ~x column
                row[2 * var + 1] = True
            elif field == BIT_ZERO:     # literal ~x: connect x column
                row[2 * var] = True
            elif field != BIT_DASH:
                raise ValueError(f"cube {cube} has an empty input field")
        and_plane.append(row)

    or_plane = [[bool((cube.outputs >> output) & 1) for cube in cover.cubes]
                for output in range(cover.n_outputs)]

    return ClassicalPersonality(
        n_inputs=cover.n_inputs,
        n_outputs=cover.n_outputs,
        n_products=len(cover.cubes),
        and_plane=and_plane,
        or_plane=or_plane,
    )
