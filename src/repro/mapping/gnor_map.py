"""Mapping a minimized cover onto two GNOR planes.

The first (AND) plane realizes each product term as one GNOR row over
the **single** input columns — the literal polarity is programmed into
the device instead of wired from a complemented column:

* positive literal ``x``  → device INVERT (the NOR must see ``~x``),
* negative literal ``~x`` → device PASS,
* variable absent         → device DROP.

The second (OR) plane NORs the selected product terms per output, which
yields ``~f`` (or ``f`` when the output was phase-complemented): the
``output_inverted`` flags record which outputs need the inverting
buffer.  Output-phase assignment therefore costs nothing on this
architecture — Section 5's "further degree of freedom".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.gnor import InputConfig
from repro.logic.cover import Cover
from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO


@dataclass
class GNORPlaneConfig:
    """Complete programming of a two-plane GNOR PLA.

    Attributes
    ----------
    n_inputs, n_outputs, n_products:
        Array dimensions (products = rows shared by both planes).
    and_plane:
        ``and_plane[row][col]`` — input-device configuration of product
        ``row`` at input column ``col``.
    or_plane:
        ``or_plane[output][row]`` — PASS when product ``row`` feeds
        output ``output``, DROP otherwise.
    output_inverted:
        ``True`` for outputs needing the inverting buffer after the OR
        plane (i.e. outputs realized in positive phase).
    """

    n_inputs: int
    n_outputs: int
    n_products: int
    and_plane: List[List[InputConfig]]
    or_plane: List[List[InputConfig]]
    output_inverted: List[bool]

    def used_devices(self) -> int:
        """Devices programmed to a conducting state (PASS or INVERT)."""
        count = 0
        for row in self.and_plane:
            count += sum(1 for c in row if c is not InputConfig.DROP)
        for row in self.or_plane:
            count += sum(1 for c in row if c is not InputConfig.DROP)
        return count

    def total_devices(self) -> int:
        """All crosspoint devices, programmed or not."""
        return self.n_products * (self.n_inputs + self.n_outputs)


_FIELD_TO_CONFIG = {
    BIT_ONE: InputConfig.INVERT,   # literal x: NOR must see ~x
    BIT_ZERO: InputConfig.PASS,    # literal ~x: NOR must see x
    BIT_DASH: InputConfig.DROP,
}


def map_cover_to_gnor(cover: Cover,
                      output_phases: Optional[Sequence[bool]] = None) -> GNORPlaneConfig:
    """Map a cover onto GNOR planes.

    Parameters
    ----------
    cover:
        The minimized cover to implement.  When ``output_phases`` is
        given, the cover is assumed to implement the *phased* function
        (output ``k`` of the cover is ``~f_k`` whenever
        ``output_phases[k]`` is False).
    output_phases:
        Phase flags from :func:`repro.espresso.phase.assign_output_phases`;
        default all-positive.

    Returns
    -------
    GNORPlaneConfig
        A configuration whose simulation reproduces ``f`` exactly.
    """
    if output_phases is None:
        output_phases = [True] * cover.n_outputs
    if len(output_phases) != cover.n_outputs:
        raise ValueError("need one phase flag per output")

    and_plane: List[List[InputConfig]] = []
    for cube in cover.cubes:
        row = []
        for var in range(cover.n_inputs):
            field = cube.field(var)
            if field not in _FIELD_TO_CONFIG:
                raise ValueError(f"cube {cube} has an empty input field")
            row.append(_FIELD_TO_CONFIG[field])
        and_plane.append(row)

    or_plane: List[List[InputConfig]] = []
    for output in range(cover.n_outputs):
        row = [InputConfig.PASS if (cube.outputs >> output) & 1
               else InputConfig.DROP
               for cube in cover.cubes]
        or_plane.append(row)

    # OR-plane NOR of the cover's products is ~g_k; the buffer inverts
    # exactly when the cover's phase is positive (g = f).
    output_inverted = [bool(phase) for phase in output_phases]

    return GNORPlaneConfig(
        n_inputs=cover.n_inputs,
        n_outputs=cover.n_outputs,
        n_products=len(cover.cubes),
        and_plane=and_plane,
        or_plane=or_plane,
        output_inverted=output_inverted,
    )
