"""Splitting functions into CLB-sized blocks.

FPGAs implement "any function within a limited number of inputs"
(Section 5), so a large function must be split across several CLBs —
the paper expects the PLA-based FPGA to split functions "the same way
standard FPGAs split large functions into different CLBs".  The
:class:`Partitioner` reproduces that flow:

1. every output is minimized on its own and outputs are greedily
   grouped into blocks by support affinity, under the block's input /
   output / product-term capacity;
2. an output whose support alone exceeds the input capacity is Shannon
   decomposed (``f = ~x f0 + x f1``) into sub-blocks plus a small
   2:1-multiplexer combiner block;
3. a cover with too many product terms for one block is split into row
   chunks OR-ed together by a combiner block.

The result is a list of :class:`Block` plus the signal graph the FPGA
netlist builder consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.espresso.espresso import minimize
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction


@dataclass
class Block:
    """One CLB-sized piece of logic.

    Attributes
    ----------
    name:
        Unique block name.
    cover:
        The block's minimized cover over its *local* inputs.
    input_signals:
        Global signal names feeding the block, in local input order.
    output_signals:
        Global signal names the block drives, in local output order.
    """

    name: str
    cover: Cover
    input_signals: List[str]
    output_signals: List[str]

    @property
    def n_inputs(self) -> int:
        """Local input count."""
        return len(self.input_signals)

    @property
    def n_outputs(self) -> int:
        """Local output count."""
        return len(self.output_signals)

    @property
    def n_products(self) -> int:
        """Product-term count of the block's cover."""
        return self.cover.n_cubes()


@dataclass
class PartitionResult:
    """Outcome of partitioning one function.

    Attributes
    ----------
    blocks:
        All blocks, in dependency order (drivers before sinks).
    primary_inputs, primary_outputs:
        Global signal names of the function's I/O.
    """

    blocks: List[Block]
    primary_inputs: List[str]
    primary_outputs: List[str]

    def intermediate_signals(self) -> List[str]:
        """Signals produced by one block and consumed by another."""
        produced = [s for b in self.blocks for s in b.output_signals]
        return [s for s in produced if s not in self.primary_outputs]

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Evaluate the whole block graph on named primary-input values."""
        values = dict(assignment)
        for block in self.blocks:
            vector = [values[s] for s in block.input_signals]
            result = block.cover.evaluate(vector)
            for signal, bit in zip(block.output_signals, result):
                values[signal] = 1 if bit else 0
        return {s: values[s] for s in self.primary_outputs}


class PartitionError(ValueError):
    """Raised when a function cannot fit the block capacity at all."""


class Partitioner:
    """Splits a function into blocks of bounded size.

    Parameters
    ----------
    max_inputs, max_outputs, max_products:
        Capacity of one block (CLB).  ``max_inputs`` must be at least 3
        so the Shannon-recombination multiplexer fits in a block.
    """

    def __init__(self, max_inputs: int = 9, max_outputs: int = 4,
                 max_products: int = 20):
        if max_inputs < 3:
            raise PartitionError("max_inputs must be >= 3 (mux blocks need 3)")
        if max_outputs < 1 or max_products < 2:
            raise PartitionError("block capacity too small")
        self.max_inputs = max_inputs
        self.max_outputs = max_outputs
        self.max_products = max_products
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    def partition(self, function: BooleanFunction) -> PartitionResult:
        """Partition ``function`` into capacity-respecting blocks."""
        primary_inputs = [f"{function.name}.x{i}" for i in range(function.n_inputs)]
        primary_outputs = [f"{function.name}.y{k}" for k in range(function.n_outputs)]
        blocks: List[Block] = []

        # Synthesize every output to a signal, then group what fits.
        pending: List[Tuple[str, Cover, List[str]]] = []
        for k in range(function.n_outputs):
            single = function.restricted_to_output(k)
            cover = minimize(single)
            signal = primary_outputs[k]
            pending.extend(self._synthesize(cover, primary_inputs, signal, blocks,
                                            function.name))

        grouped = self._group_outputs(pending, function.name)
        blocks.extend(grouped)
        blocks = _dependency_order(blocks, primary_inputs)
        return PartitionResult(blocks, primary_inputs, primary_outputs)

    # ------------------------------------------------------------------
    def _synthesize(self, cover: Cover, input_signals: List[str], target: str,
                    blocks: List[Block], prefix: str
                    ) -> List[Tuple[str, Cover, List[str]]]:
        """Reduce a single-output cover until it fits one block.

        Returns leaf (signal, cover, inputs) triples to be grouped;
        helper blocks created along the way are appended to ``blocks``.
        """
        support = _support_of(cover)
        local_cover, local_inputs = _project(cover, support, input_signals)

        if len(local_inputs) > self.max_inputs:
            return self._shannon_split(local_cover, local_inputs, target,
                                       blocks, prefix)
        if local_cover.n_cubes() > self.max_products:
            return self._row_split(local_cover, local_inputs, target,
                                   blocks, prefix)
        return [(target, local_cover, local_inputs)]

    def _shannon_split(self, cover: Cover, input_signals: List[str],
                       target: str, blocks: List[Block], prefix: str
                       ) -> List[Tuple[str, Cover, List[str]]]:
        """``f = ~x f0 + x f1`` on the most binate variable."""
        var = cover.most_binate_variable()
        if var is None:
            var = 0
        leaves: List[Tuple[str, Cover, List[str]]] = []
        branch_signals = []
        for value in (False, True):
            sub = cover.cofactor_var(var, value).single_cube_containment()
            signal = f"{prefix}.n{next(self._counter)}"
            branch_signals.append(signal)
            leaves.extend(self._synthesize(sub, input_signals, signal,
                                           blocks, prefix))
        # Multiplexer leaf: target = ~sel & f0 | sel & f1 over
        # (f0_signal, f1_signal, select_signal).
        mux = Cover.from_strings(["1-0 1", "-11 1"])
        leaves.append((target, mux,
                       [branch_signals[0], branch_signals[1], input_signals[var]]))
        return leaves

    def _row_split(self, cover: Cover, input_signals: List[str], target: str,
                   blocks: List[Block], prefix: str
                   ) -> List[Tuple[str, Cover, List[str]]]:
        """Split an over-tall cover into OR-ed row chunks."""
        chunk_signals = []
        leaves: List[Tuple[str, Cover, List[str]]] = []
        cubes = list(cover.cubes)
        for start in range(0, len(cubes), self.max_products):
            chunk = Cover(cover.n_inputs, 1, cubes[start:start + self.max_products])
            signal = f"{prefix}.n{next(self._counter)}"
            chunk_signals.append(signal)
            leaves.extend(self._synthesize(chunk, input_signals, signal,
                                           blocks, prefix))
        # OR combiner over the chunk signals (split again if too wide).
        while len(chunk_signals) > self.max_inputs:
            grouped = []
            for start in range(0, len(chunk_signals), self.max_inputs):
                part = chunk_signals[start:start + self.max_inputs]
                if len(part) == 1:
                    grouped.extend(part)
                    continue
                signal = f"{prefix}.n{next(self._counter)}"
                leaves.append((signal, _or_cover(len(part)), part))
                grouped.append(signal)
            chunk_signals = grouped
        leaves.append((target, _or_cover(len(chunk_signals)), chunk_signals))
        return leaves

    # ------------------------------------------------------------------
    def _group_outputs(self, pending: List[Tuple[str, Cover, List[str]]],
                       prefix: str) -> List[Block]:
        """Greedy affinity grouping of single-output leaves into blocks.

        Leaves are grouped only within the same dependency level
        (distance from primary inputs through other leaves), which
        guarantees the resulting block graph stays acyclic: a leaf can
        never share a block with one of its own (transitive) drivers.
        """
        levels = _leaf_levels(pending)
        blocks: List[Block] = []
        for level in sorted(set(levels.values())):
            level_pending = [leaf for leaf in pending
                             if levels[leaf[0]] == level]
            blocks.extend(self._group_level(level_pending, prefix))
        return blocks

    def _group_level(self, pending: List[Tuple[str, Cover, List[str]]],
                     prefix: str) -> List[Block]:
        """Affinity grouping among same-level leaves."""
        remaining = list(pending)
        blocks: List[Block] = []
        while remaining:
            seed = remaining.pop(0)
            group = [seed]
            inputs: List[str] = list(seed[2])
            products = seed[1].n_cubes()
            changed = True
            while changed and len(group) < self.max_outputs:
                changed = False
                best_idx = None
                best_new = None
                for idx, (signal, cover, sig_in) in enumerate(remaining):
                    new_inputs = [s for s in sig_in if s not in inputs]
                    if len(inputs) + len(new_inputs) > self.max_inputs:
                        continue
                    if products + cover.n_cubes() > self.max_products:
                        continue
                    if best_new is None or len(new_inputs) < best_new:
                        best_new = len(new_inputs)
                        best_idx = idx
                if best_idx is not None:
                    signal, cover, sig_in = remaining.pop(best_idx)
                    group.append((signal, cover, sig_in))
                    inputs.extend(s for s in sig_in if s not in inputs)
                    products += cover.n_cubes()
                    changed = True
            blocks.append(self._build_block(group, inputs, prefix))
        return blocks

    def _build_block(self, group: List[Tuple[str, Cover, List[str]]],
                     inputs: List[str], prefix: str) -> Block:
        """Merge grouped single-output covers into one multi-output block."""
        n_in = len(inputs)
        n_out = len(group)
        index = {s: i for i, s in enumerate(inputs)}
        merged = Cover(n_in, n_out)
        output_signals = []
        for k, (signal, cover, sig_in) in enumerate(group):
            output_signals.append(signal)
            remap = [index[s] for s in sig_in]
            for cube in cover.cubes:
                lits = [(remap[var], positive) for var, positive in cube.literals()]
                merged.append(Cube.from_literals(n_in, lits, n_out, outputs=1 << k))
        name = f"{prefix}.blk{next(self._counter)}"
        return Block(name, merged.merge_identical_inputs(), inputs, output_signals)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _leaf_levels(pending: List[Tuple[str, Cover, List[str]]]) -> Dict[str, int]:
    """Dependency level of each leaf's output signal.

    Primary-input signals are level 0; a leaf sits one level above the
    deepest leaf driving one of its inputs.
    """
    producer = {signal: (cover, inputs) for signal, cover, inputs in pending}
    levels: Dict[str, int] = {}

    def level_of(signal: str) -> int:
        if signal not in producer:
            return 0  # primary input
        if signal in levels:
            return levels[signal]
        levels[signal] = 0  # cycle guard; the leaf graph is acyclic by construction
        _cover, inputs = producer[signal]
        value = 1 + max((level_of(s) for s in inputs), default=0)
        levels[signal] = value
        return value

    for signal, _cover, _inputs in pending:
        level_of(signal)
    return {signal: levels[signal] for signal, _c, _i in pending}


def _support_of(cover: Cover) -> List[int]:
    support: Set[int] = set()
    for cube in cover.cubes:
        for var, _ in cube.literals():
            support.add(var)
    return sorted(support)


def _project(cover: Cover, support: Sequence[int],
             input_signals: Sequence[str]) -> Tuple[Cover, List[str]]:
    """Re-express a cover over only its support variables."""
    if not support:
        # constant function: keep one dummy input so the block is well-formed
        support = [0]
    index = {var: i for i, var in enumerate(support)}
    projected = Cover(len(support), 1)
    for cube in cover.cubes:
        lits = [(index[var], positive) for var, positive in cube.literals()]
        projected.append(Cube.from_literals(len(support), lits, 1))
    signals = [input_signals[var] for var in support]
    return projected, signals


def _or_cover(width: int) -> Cover:
    """The ``width``-input OR as a cover."""
    cover = Cover(width, 1)
    for i in range(width):
        cover.append(Cube.from_literals(width, [(i, True)], 1))
    return cover


def _dependency_order(blocks: List[Block],
                      primary_inputs: Sequence[str]) -> List[Block]:
    """Topologically sort blocks so drivers precede sinks."""
    available: Set[str] = set(primary_inputs)
    ordered: List[Block] = []
    remaining = list(blocks)
    while remaining:
        progressed = False
        for block in list(remaining):
            if all(s in available for s in block.input_signals):
                ordered.append(block)
                available.update(block.output_signals)
                remaining.remove(block)
                progressed = True
        if not progressed:
            raise PartitionError("cyclic block dependencies (internal error)")
    return ordered
