"""Mapping minimized covers onto PLA hardware.

* :mod:`repro.mapping.gnor_map` — covers onto GNOR planes (one column
  per input, polarity programmed per device);
* :mod:`repro.mapping.classical_map` — covers onto the dual-column
  baseline PLA (Flash / EEPROM style);
* :mod:`repro.mapping.partition` — splitting big functions into
  CLB-sized blocks for the FPGA flow;
* :mod:`repro.mapping.wpla_map` — Doppio-Espresso results onto the
  4-plane Whirlpool ring.
"""

from repro.mapping.gnor_map import GNORPlaneConfig, map_cover_to_gnor
from repro.mapping.classical_map import ClassicalPersonality, map_cover_to_classical
from repro.mapping.partition import Partitioner, Block, PartitionResult
from repro.mapping.wpla_map import map_doppio_to_wpla

__all__ = [
    "GNORPlaneConfig",
    "map_cover_to_gnor",
    "ClassicalPersonality",
    "map_cover_to_classical",
    "Partitioner",
    "Block",
    "PartitionResult",
    "map_doppio_to_wpla",
]
