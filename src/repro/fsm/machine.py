"""Symbolic finite-state machine specifications.

A (Mealy) FSM is a set of named states and guarded transitions; guards
are input patterns in PLA cube notation (``"1-"`` = first input high,
second don't-care), so an FSM spec reads like a KISS2 state table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Transition:
    """One guarded transition.

    Attributes
    ----------
    source, target:
        State names.
    guard:
        Input pattern over the FSM's inputs (``0``/``1``/``-`` per bit).
    outputs:
        Output pattern asserted while taking this transition (``0``/``1``
        per output bit, Mealy semantics).
    """

    source: str
    guard: str
    target: str
    outputs: str


class FSM:
    """A Mealy machine over binary inputs/outputs.

    Parameters
    ----------
    n_inputs, n_outputs:
        Bit widths.
    reset_state:
        Initial state name.
    name:
        Used in reports and signal names.
    """

    def __init__(self, n_inputs: int, n_outputs: int, reset_state: str,
                 name: str = "fsm"):
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.reset_state = reset_state
        self.name = name
        self.states: List[str] = [reset_state]
        self.transitions: List[Transition] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, state: str) -> None:
        """Declare a state (idempotent)."""
        if state not in self.states:
            self.states.append(state)

    def add_transition(self, source: str, guard: str, target: str,
                       outputs: str) -> None:
        """Add a guarded transition, declaring unseen states."""
        if len(guard) != self.n_inputs:
            raise ValueError(f"guard {guard!r} must have {self.n_inputs} bits")
        if len(outputs) != self.n_outputs:
            raise ValueError(
                f"outputs {outputs!r} must have {self.n_outputs} bits")
        if any(ch not in "01-" for ch in guard):
            raise ValueError(f"bad guard character in {guard!r}")
        if any(ch not in "01" for ch in outputs):
            raise ValueError(f"bad output character in {outputs!r}")
        self.add_state(source)
        self.add_state(target)
        self.transitions.append(Transition(source, guard, target, outputs))

    # ------------------------------------------------------------------
    # reference semantics (the synthesis oracle)
    # ------------------------------------------------------------------
    @staticmethod
    def _guard_matches(guard: str, inputs: Sequence[int]) -> bool:
        for ch, bit in zip(guard, inputs):
            if ch == "1" and not bit:
                return False
            if ch == "0" and bit:
                return False
        return True

    def step(self, state: str, inputs: Sequence[int]) -> Tuple[str, List[int]]:
        """Reference next-state/output: first matching transition wins.

        With no matching transition the machine self-loops emitting
        all-zero outputs (the implicit default of a PLA implementation:
        unprogrammed product terms assert nothing).
        """
        if len(inputs) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} input bits")
        for transition in self.transitions:
            if transition.source == state and \
                    self._guard_matches(transition.guard, inputs):
                outputs = [int(ch) for ch in transition.outputs]
                return transition.target, outputs
        return state, [0] * self.n_outputs

    def run(self, input_stream: Sequence[Sequence[int]]
            ) -> List[Tuple[str, List[int]]]:
        """Run from reset; returns (next_state, outputs) per cycle."""
        state = self.reset_state
        trace = []
        for inputs in input_stream:
            state, outputs = self.step(state, inputs)
            trace.append((state, outputs))
        return trace

    def is_deterministic(self) -> bool:
        """True when no state has overlapping guards.

        Synthesis requires determinism (a PLA ORs all matching rows).
        """
        for i, a in enumerate(self.transitions):
            for b in self.transitions[i + 1:]:
                if a.source != b.source:
                    continue
                if all(x == "-" or y == "-" or x == y
                       for x, y in zip(a.guard, b.guard)):
                    if (a.target, a.outputs) != (b.target, b.outputs):
                        return False
        return True

    def transitions_from(self, state: str) -> List[Transition]:
        """All transitions leaving ``state``."""
        return [t for t in self.transitions if t.source == state]

    def __repr__(self) -> str:
        return (f"FSM({self.name!r}, states={len(self.states)}, "
                f"transitions={len(self.transitions)})")


def sequence_detector(pattern: str, name: str = "seqdet") -> FSM:
    """The classic 1-input overlapping sequence detector for ``pattern``.

    Output goes high for one cycle whenever the input history ends with
    ``pattern`` (overlaps allowed) — a standard FSM benchmark.
    """
    if not pattern or any(ch not in "01" for ch in pattern):
        raise ValueError("pattern must be a non-empty 0/1 string")
    fsm = FSM(1, 1, reset_state="s0", name=name)
    # state s_k = "k bits of the pattern matched"
    for k in range(len(pattern)):
        state = f"s{k}"
        for bit in "01":
            matched = pattern[:k] + bit
            # longest suffix of `matched` that is a prefix of `pattern`
            next_k = 0
            for length in range(min(len(matched), len(pattern)), 0, -1):
                if matched.endswith(pattern[:length]):
                    next_k = length
                    break
            emit = "0"
            if next_k == len(pattern):
                emit = "1"
                # overlap continuation: longest *proper* suffix of the
                # full match that is again a prefix of the pattern
                next_k = 0
                for length in range(len(pattern) - 1, 0, -1):
                    if matched.endswith(pattern[:length]):
                        next_k = length
                        break
            fsm.add_transition(state, bit, f"s{next_k}", emit)
    return fsm
