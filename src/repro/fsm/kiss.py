"""KISS2 FSM file format (the MCNC sequential-benchmark format).

The MCNC suite's FSM benchmarks ship as KISS2 state tables::

    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    01 st0 st1 0
    -- st1 st2 1
    ...
    .e

Each row is ``<input pattern> <current state> <next state> <outputs>``;
``-`` in the output column is read as 0 (our FSMs are fully specified
on outputs).  This module parses KISS2 into :class:`repro.fsm.machine.FSM`
and writes FSMs back out.
"""

from __future__ import annotations

from typing import List, Optional, TextIO, Union

from repro.errors import ReproInputError
from repro.fsm.machine import FSM


class KISSFormatError(ReproInputError):
    """Raised on malformed KISS2 input (with file/line context)."""


def _int_arg(parts: List[str], what: str, name: str,
             line_no: int) -> int:
    """Parse a directive's integer argument, or raise with context."""
    if len(parts) < 2:
        raise KISSFormatError(f"{what} needs an argument", source=name,
                              line=line_no)
    try:
        value = int(parts[1])
    except ValueError:
        raise KISSFormatError(
            f"{what} argument {parts[1]!r} is not an integer",
            source=name, line=line_no) from None
    if value < 0:
        raise KISSFormatError(f"{what} must be non-negative, got {value}",
                              source=name, line=line_no)
    return value


def parse_kiss(source: Union[str, TextIO], name: str = "kiss") -> FSM:
    """Parse KISS2 text (string or file object) into an :class:`FSM`.

    Malformed input — truncated ``.i``/``.o``/``.s``/``.r`` directives,
    non-integer arguments, wrong column counts, bad guard bits — raises
    :class:`KISSFormatError` (a :class:`repro.errors.ReproInputError`)
    carrying ``name`` and the 1-based line number.
    """
    text = source.read() if hasattr(source, "read") else source

    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    reset_state: Optional[str] = None
    declared_states: Optional[int] = None
    rows: List[tuple] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                n_inputs = _int_arg(parts, ".i", name, line_no)
            elif directive == ".o":
                n_outputs = _int_arg(parts, ".o", name, line_no)
            elif directive == ".s":
                declared_states = _int_arg(parts, ".s", name, line_no)
            elif directive == ".p":
                continue  # advisory row count
            elif directive == ".r":
                if len(parts) < 2:
                    raise KISSFormatError(".r needs a state name",
                                          source=name, line=line_no)
                reset_state = parts[1]
            elif directive in (".e", ".end"):
                break
            else:
                continue
        else:
            parts = line.split()
            if len(parts) != 4:
                raise KISSFormatError(
                    f"expected 4 columns, got {len(parts)}",
                    source=name, line=line_no)
            rows.append((line_no,) + tuple(parts))

    if n_inputs is None or n_outputs is None:
        raise KISSFormatError("missing .i or .o directive", source=name)
    if not rows:
        raise KISSFormatError("no transition rows", source=name)
    if reset_state is None:
        reset_state = rows[0][2]  # KISS convention: first row's state

    fsm = FSM(n_inputs, n_outputs, reset_state, name=name)
    for line_no, guard, source_state, target_state, outputs in rows:
        if len(guard) != n_inputs:
            raise KISSFormatError(
                f"guard {guard!r} needs {n_inputs} bits",
                source=name, line=line_no)
        if any(ch not in "01-" for ch in guard):
            raise KISSFormatError(
                f"guard {guard!r} has characters outside 0/1/-",
                source=name, line=line_no)
        if len(outputs) != n_outputs:
            raise KISSFormatError(
                f"outputs {outputs!r} need {n_outputs} bits",
                source=name, line=line_no)
        outputs = outputs.replace("-", "0")
        if any(ch not in "01" for ch in outputs):
            raise KISSFormatError(
                "outputs have characters outside 0/1/-",
                source=name, line=line_no)
        if target_state == "*":  # KISS "any state" — keep the source
            target_state = source_state
        fsm.add_transition(source_state, guard, target_state, outputs)

    if declared_states is not None and len(fsm.states) != declared_states:
        # advisory, like espresso's .p — tolerate but stay honest
        pass
    return fsm


def write_kiss(fsm: FSM) -> str:
    """Serialize an FSM to KISS2 text."""
    lines = [f".i {fsm.n_inputs}", f".o {fsm.n_outputs}",
             f".s {len(fsm.states)}", f".p {len(fsm.transitions)}",
             f".r {fsm.reset_state}"]
    for transition in fsm.transitions:
        lines.append(f"{transition.guard} {transition.source} "
                     f"{transition.target} {transition.outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
