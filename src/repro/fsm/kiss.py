"""KISS2 FSM file format (the MCNC sequential-benchmark format).

The MCNC suite's FSM benchmarks ship as KISS2 state tables::

    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    01 st0 st1 0
    -- st1 st2 1
    ...
    .e

Each row is ``<input pattern> <current state> <next state> <outputs>``;
``-`` in the output column is read as 0 (our FSMs are fully specified
on outputs).  This module parses KISS2 into :class:`repro.fsm.machine.FSM`
and writes FSMs back out.
"""

from __future__ import annotations

from typing import List, Optional, TextIO, Union

from repro.fsm.machine import FSM


class KISSFormatError(ValueError):
    """Raised on malformed KISS2 input."""


def parse_kiss(source: Union[str, TextIO], name: str = "kiss") -> FSM:
    """Parse KISS2 text (string or file object) into an :class:`FSM`."""
    text = source.read() if hasattr(source, "read") else source

    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    reset_state: Optional[str] = None
    declared_states: Optional[int] = None
    rows: List[tuple] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                n_inputs = int(parts[1])
            elif directive == ".o":
                n_outputs = int(parts[1])
            elif directive == ".s":
                declared_states = int(parts[1])
            elif directive == ".p":
                continue  # advisory row count
            elif directive == ".r":
                reset_state = parts[1]
            elif directive in (".e", ".end"):
                break
            else:
                continue
        else:
            parts = line.split()
            if len(parts) != 4:
                raise KISSFormatError(
                    f"line {line_no}: expected 4 columns, got {len(parts)}")
            rows.append((line_no,) + tuple(parts))

    if n_inputs is None or n_outputs is None:
        raise KISSFormatError("missing .i or .o directive")
    if not rows:
        raise KISSFormatError("no transition rows")
    if reset_state is None:
        reset_state = rows[0][2]  # KISS convention: first row's state

    fsm = FSM(n_inputs, n_outputs, reset_state, name=name)
    for line_no, guard, source_state, target_state, outputs in rows:
        if len(guard) != n_inputs:
            raise KISSFormatError(
                f"line {line_no}: guard {guard!r} needs {n_inputs} bits")
        if len(outputs) != n_outputs:
            raise KISSFormatError(
                f"line {line_no}: outputs {outputs!r} need {n_outputs} bits")
        outputs = outputs.replace("-", "0")
        if target_state == "*":  # KISS "any state" — keep the source
            target_state = source_state
        fsm.add_transition(source_state, guard, target_state, outputs)

    if declared_states is not None and len(fsm.states) != declared_states:
        # advisory, like espresso's .p — tolerate but stay honest
        pass
    return fsm


def write_kiss(fsm: FSM) -> str:
    """Serialize an FSM to KISS2 text."""
    lines = [f".i {fsm.n_inputs}", f".o {fsm.n_outputs}",
             f".s {len(fsm.states)}", f".p {len(fsm.transitions)}",
             f".r {fsm.reset_state}"]
    for transition in fsm.transitions:
        lines.append(f"{transition.guard} {transition.source} "
                     f"{transition.target} {transition.outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
