"""Finite-state machines on ambipolar-CNFET PLAs.

The classic application of PLAs is FSM controllers: next-state and
output logic in the planes, a state register closing the loop.  This
subpackage provides the full flow on the paper's fabric:

* :mod:`repro.fsm.machine` — symbolic FSM specifications (Mealy);
* :mod:`repro.fsm.encoding` — binary / gray / one-hot state encodings;
* :mod:`repro.fsm.synthesis` — encode, minimize, map onto an
  :class:`~repro.core.pla.AmbipolarPLA`, and wrap it with registers as
  a cycle-accurate :class:`SequentialPLA`.
"""

from repro.fsm.machine import FSM, Transition
from repro.fsm.encoding import (binary_encoding, gray_encoding,
                                one_hot_encoding, StateEncoding)
from repro.fsm.synthesis import synthesize_fsm, SequentialPLA, FSMSynthesis

__all__ = [
    "FSM",
    "Transition",
    "StateEncoding",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "synthesize_fsm",
    "SequentialPLA",
    "FSMSynthesis",
]
