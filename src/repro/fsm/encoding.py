"""State encodings for FSM synthesis.

The encoding decides the PLA's state-register width and, through the
minimizer, its product-term count: binary is narrow, one-hot trades
register bits for simpler next-state logic, gray minimizes register
toggling (dynamic energy on the fabric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass
class StateEncoding:
    """A state-name -> bit-vector assignment.

    Attributes
    ----------
    n_bits:
        Register width.
    codes:
        state name -> tuple of 0/1 bits (LSB first).
    style:
        ``"binary"`` / ``"gray"`` / ``"one-hot"`` (reports only).
    """

    n_bits: int
    codes: Dict[str, tuple]
    style: str

    def code_of(self, state: str) -> tuple:
        """The bit vector of a state."""
        return self.codes[state]

    def state_of(self, bits: Sequence[int]) -> str:
        """Inverse lookup (raises ``KeyError`` for unused codes)."""
        key = tuple(bits)
        for state, code in self.codes.items():
            if code == key:
                return state
        raise KeyError(f"no state encoded as {key}")


def binary_encoding(states: Sequence[str]) -> StateEncoding:
    """Dense binary encoding in declaration order."""
    n_bits = max(1, (len(states) - 1).bit_length())
    codes = {state: tuple((i >> b) & 1 for b in range(n_bits))
             for i, state in enumerate(states)}
    return StateEncoding(n_bits, codes, "binary")


def gray_encoding(states: Sequence[str]) -> StateEncoding:
    """Gray-code encoding: consecutive states differ in one bit."""
    n_bits = max(1, (len(states) - 1).bit_length())
    codes = {}
    for i, state in enumerate(states):
        gray = i ^ (i >> 1)
        codes[state] = tuple((gray >> b) & 1 for b in range(n_bits))
    return StateEncoding(n_bits, codes, "gray")


def one_hot_encoding(states: Sequence[str]) -> StateEncoding:
    """One flip-flop per state; exactly one bit high."""
    n_bits = len(states)
    codes = {state: tuple(1 if b == i else 0 for b in range(n_bits))
             for i, state in enumerate(states)}
    return StateEncoding(n_bits, codes, "one-hot")
