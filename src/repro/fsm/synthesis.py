"""FSM synthesis onto ambipolar-CNFET PLAs.

Flow: encode the states, translate every transition into a cube over
``(primary inputs, state bits)`` asserting ``(next-state bits,
outputs)``, declare unused state codes as don't-cares, complete each
state's unspecified input space with explicit self-loops (a PLA's
unprogrammed default — all-zero outputs — would otherwise jump to the
all-zero state code), minimize, and wrap the programmed
:class:`~repro.core.pla.AmbipolarPLA` with a state register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.device import DEFAULT_PARAMETERS, DeviceParameters
from repro.core.pla import AmbipolarPLA
from repro.espresso.espresso import minimize
from repro.fsm.encoding import StateEncoding, binary_encoding
from repro.fsm.machine import FSM
from repro.logic.complement import complement_cover
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction


@dataclass
class FSMSynthesis:
    """Everything produced by :func:`synthesize_fsm`.

    Attributes
    ----------
    function:
        The encoded combinational specification (with DC-set).
    cover:
        Its minimized cover.
    encoding:
        The state encoding used.
    pla:
        The programmed PLA (combinational core).
    sequential:
        The register-wrapped machine.
    """

    function: BooleanFunction
    cover: Cover
    encoding: StateEncoding
    pla: AmbipolarPLA
    sequential: "SequentialPLA"


class SequentialPLA:
    """A PLA plus a state register: a cycle-accurate FSM implementation.

    Inputs of :meth:`step` are the FSM's primary inputs; the state bits
    are fed back internally.
    """

    def __init__(self, pla: AmbipolarPLA, encoding: StateEncoding,
                 n_inputs: int, n_outputs: int, reset_state: str):
        self.pla = pla
        self.encoding = encoding
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.reset_state = reset_state
        self.state_bits: List[int] = list(encoding.code_of(reset_state))

    def reset(self) -> None:
        """Load the reset state into the register."""
        self.state_bits = list(self.encoding.code_of(self.reset_state))

    @property
    def state(self) -> str:
        """The symbolic current state (KeyError on a corrupted register)."""
        return self.encoding.state_of(self.state_bits)

    def step(self, inputs: Sequence[int]) -> List[int]:
        """One clock cycle: evaluate the planes, latch the next state."""
        if len(inputs) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} inputs")
        vector = list(inputs) + list(self.state_bits)
        result = self.pla.evaluate(vector)
        next_bits = result[:self.encoding.n_bits]
        outputs = result[self.encoding.n_bits:]
        self.state_bits = list(next_bits)
        return list(outputs)

    def run(self, input_stream: Sequence[Sequence[int]]
            ) -> List[Tuple[str, List[int]]]:
        """Run from the current state; returns (state, outputs) per cycle."""
        trace = []
        for inputs in input_stream:
            outputs = self.step(inputs)
            trace.append((self.state, outputs))
        return trace


def synthesize_fsm(fsm: FSM, encoding: Optional[StateEncoding] = None,
                   params: DeviceParameters = DEFAULT_PARAMETERS,
                   complete: bool = True) -> FSMSynthesis:
    """Synthesize ``fsm`` onto an ambipolar-CNFET PLA.

    Parameters
    ----------
    encoding:
        State encoding (default: binary over declaration order).
    complete:
        Add explicit self-loop transitions for every state's unspecified
        input patterns so PLA semantics match the FSM's (default True).

    Raises
    ------
    ValueError
        For nondeterministic machines (overlapping guards with
        conflicting actions: a PLA would OR them).
    """
    if not fsm.is_deterministic():
        raise ValueError(f"{fsm.name} has conflicting overlapping guards")
    from repro.tech import TechDescriptor
    if isinstance(params, TechDescriptor):
        params = DeviceParameters.from_tech(params)
    if encoding is None:
        encoding = binary_encoding(fsm.states)

    n_in = fsm.n_inputs + encoding.n_bits
    n_out = encoding.n_bits + fsm.n_outputs
    on = Cover(n_in, n_out)
    dc = Cover(n_in, n_out)

    def transition_cube(guard: str, state_code: tuple, outputs_mask: int
                        ) -> Cube:
        literals = []
        for i, ch in enumerate(guard):
            if ch == "1":
                literals.append((i, True))
            elif ch == "0":
                literals.append((i, False))
        for b, bit in enumerate(state_code):
            literals.append((fsm.n_inputs + b, bool(bit)))
        return Cube.from_literals(n_in, literals, n_out,
                                  outputs=outputs_mask)

    def action_mask(target: str, outputs: Sequence[int]) -> int:
        mask = 0
        for b, bit in enumerate(encoding.code_of(target)):
            if bit:
                mask |= 1 << b
        for k, bit in enumerate(outputs):
            if bit:
                mask |= 1 << (encoding.n_bits + k)
        return mask

    for transition in fsm.transitions:
        mask = action_mask(transition.target,
                           [int(ch) for ch in transition.outputs])
        if mask:
            on.append(transition_cube(transition.guard,
                                      encoding.code_of(transition.source),
                                      mask))

    if complete:
        for state in fsm.states:
            uncovered = _unspecified_inputs(fsm, state)
            mask = action_mask(state, [0] * fsm.n_outputs)
            if not mask:
                continue  # all-zero code: PLA default already self-loops
            for cube in uncovered.cubes:
                guard = cube.input_string()
                on.append(transition_cube(guard, encoding.code_of(state),
                                          mask))

    # unused state codes are don't-cares everywhere
    used_codes = set(encoding.codes.values())
    for code_value in range(1 << encoding.n_bits):
        code = tuple((code_value >> b) & 1 for b in range(encoding.n_bits))
        if code in used_codes:
            continue
        literals = [(fsm.n_inputs + b, bool(bit)) for b, bit in enumerate(code)]
        dc.append(Cube.from_literals(n_in, literals, n_out,
                                     outputs=(1 << n_out) - 1))

    function = BooleanFunction(on, dc, name=f"{fsm.name}.logic")
    cover = minimize(function)
    pla = AmbipolarPLA.from_cover(cover, params=params)
    sequential = SequentialPLA(pla, encoding, fsm.n_inputs, fsm.n_outputs,
                               fsm.reset_state)
    return FSMSynthesis(function=function, cover=cover, encoding=encoding,
                        pla=pla, sequential=sequential)


def _unspecified_inputs(fsm: FSM, state: str) -> Cover:
    """Input patterns of ``state`` not covered by any transition guard."""
    guards = Cover(fsm.n_inputs, 1)
    for transition in fsm.transitions_from(state):
        guards.append(Cube.from_string(transition.guard, "1"))
    if not len(guards):
        return Cover.universe(fsm.n_inputs, 1)
    return complement_cover(guards)
