"""Evaluating a GNOR configuration with defects injected.

:mod:`repro.testgen.faults` simulates *single* crosspoint faults (the
ATPG model).  Manufacturing analysis needs the multi-fault case: a
sampled :class:`~repro.core.defects.DefectMap` hits many crosspoints at
once, possibly on spare rows/columns and under a repair assignment.
This module evaluates the *defective machine* exactly:

* a **defect overlay** translates a physical defect map into logical
  coordinates under a (row, column) assignment — unassigned physical
  rows are disabled (disconnected from both planes), matching the
  repair model of :mod:`repro.core.fault`;
* the **kernel path** patches the packed device masks of
  :mod:`repro.kernels.bitslice` — a stuck-on device pulls on both
  signal polarities (``pass & invert`` masks both set), a stuck-off /
  PG-leak device on neither — and compares whole output words against
  the golden configuration;
* the **scalar path** mirrors :class:`~repro.testgen.faults.FaultSimulator`
  semantics fault-for-fault, and is the oracle in the differential
  tests.

Fault semantics (identical to the single-fault table of
``testgen/faults.py``, applied simultaneously):

=============  =========================  =================================
plane          stuck off / PG leak        stuck on
=============  =========================  =================================
AND (r, i)     input ``i`` dropped from   row ``r`` pinned low (product
               product ``r``              term dead)
OR (k, r)      product ``r`` dropped      output column ``k``'s NOR pinned
               from output ``k``          low
=============  =========================  =================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.defects import DefectMap, DefectType
from repro.core.gnor import InputConfig
from repro.mapping.gnor_map import GNORPlaneConfig

#: Logical-coordinate defect overlay: ``("and", row, input)`` or
#: ``("or", row, output)`` -> :class:`DefectType`.
DefectOverlay = Dict[Tuple[str, int, int], DefectType]

#: Input counts above this are refused (the golden table would not fit).
MAX_GOLDEN_INPUTS = 22


def overlay_from_map(config: GNORPlaneConfig, defect_map: DefectMap,
                     row_assignment: Optional[Dict[int, int]] = None,
                     col_assignment: Optional[Dict[int, int]] = None,
                     n_input_columns: Optional[int] = None) -> DefectOverlay:
    """Project a physical defect map onto logical coordinates.

    Parameters
    ----------
    config:
        The logical programming being placed.
    defect_map:
        Physical map over ``(n_physical_rows, n_columns)`` where the
        columns are the input-capable columns followed by the output
        columns.
    row_assignment:
        logical product row -> physical row (default identity).
        Physical rows not in the image are disabled; their defects
        vanish from the overlay.
    col_assignment:
        logical input -> physical input-capable column (default
        identity).
    n_input_columns:
        Number of physical input-capable columns (inputs + spare
        columns); output ``k`` sits at physical column
        ``n_input_columns + k``.  Defaults to ``config.n_inputs``.
    """
    if n_input_columns is None:
        n_input_columns = config.n_inputs
    phys_to_logical_row = {}
    for r in range(config.n_products):
        q = r if row_assignment is None else row_assignment.get(r)
        if q is not None:
            phys_to_logical_row[q] = r
    phys_to_logical_col = {}
    for i in range(config.n_inputs):
        c = i if col_assignment is None else col_assignment.get(i)
        if c is not None:
            phys_to_logical_col[c] = i

    overlay: DefectOverlay = {}
    for q, c, defect in defect_map.iter_defects():
        r = phys_to_logical_row.get(q)
        if r is None:
            continue  # disabled physical row
        if c < n_input_columns:
            i = phys_to_logical_col.get(c)
            if i is None:
                continue  # unassigned (spare) input column
            overlay[("and", r, i)] = defect
        else:
            k = c - n_input_columns
            if k < config.n_outputs:
                overlay[("or", r, k)] = defect
    return overlay


# ----------------------------------------------------------------------
# scalar evaluation (oracle)
# ----------------------------------------------------------------------
def _conducts(programmed: InputConfig, value: int) -> bool:
    if programmed is InputConfig.PASS:
        return bool(value)
    if programmed is InputConfig.INVERT:
        return not value
    return False


def evaluate_defective(config: GNORPlaneConfig, overlay: DefectOverlay,
                       vector: Sequence[int]) -> List[int]:
    """Output vector of the defective machine on one input vector."""
    rows: List[int] = []
    for r in range(config.n_products):
        pulled = False
        for i in range(config.n_inputs):
            defect = overlay.get(("and", r, i))
            if defect is DefectType.STUCK_ON:
                pulled = True
                break
            if defect is not None:  # stuck off / PG leak
                continue
            if _conducts(config.and_plane[r][i], vector[i]):
                pulled = True
                break
        rows.append(0 if pulled else 1)
    outputs: List[int] = []
    for k in range(config.n_outputs):
        pulled = False
        for r in range(config.n_products):
            defect = overlay.get(("or", r, k))
            if defect is DefectType.STUCK_ON:
                pulled = True
                break
            if defect is not None:
                continue
            if _conducts(config.or_plane[k][r], rows[r]):
                pulled = True
                break
        nor_value = 0 if pulled else 1
        outputs.append(1 - nor_value if config.output_inverted[k]
                       else nor_value)
    return outputs


def _scalar_truth_table(config: GNORPlaneConfig,
                        overlay: DefectOverlay) -> List[int]:
    table = []
    for minterm in range(1 << config.n_inputs):
        vector = [(minterm >> i) & 1 for i in range(config.n_inputs)]
        bits = evaluate_defective(config, overlay, vector)
        table.append(sum(bit << k for k, bit in enumerate(bits)))
    return table


# ----------------------------------------------------------------------
# kernel evaluation
# ----------------------------------------------------------------------
def _patched_pack(config: GNORPlaneConfig, overlay: DefectOverlay):
    """The bitslice :class:`PackedConfig` with defect-patched masks."""
    from repro.kernels import bitslice as bs
    import numpy as np

    pc = bs.pack_config(config)
    and_pass = pc.and_pass.copy()
    and_invert = pc.and_invert.copy()
    or_pass = pc.or_pass.copy()
    or_invert = pc.or_invert.copy()
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    zero = np.uint64(0)
    for (site, r, c), defect in overlay.items():
        stuck_on = defect is DefectType.STUCK_ON
        if site == "and":
            and_pass[r, c] = ones if stuck_on else zero
            and_invert[r, c] = ones if stuck_on else zero
        else:  # ("or", row r, output c)
            or_pass[c, r] = ones if stuck_on else zero
            or_invert[c, r] = ones if stuck_on else zero
    return bs.PackedConfig(pc.n_inputs, pc.n_outputs, pc.n_products,
                           and_pass, and_invert, or_pass, or_invert,
                           pc.inverted)


def _kernel_output_words(pc) -> "object":
    """Full-space output words ``(n_outputs, n_words)`` of a packed
    config, tail word masked to the real minterm count."""
    from repro.kernels import bitslice as bs
    import numpy as np

    n = pc.n_inputs
    total = 1 << n
    n_words = max(1, -(-total // bs.WORD))
    out = np.empty((pc.n_outputs, n_words), dtype=np.uint64)
    for lo in range(0, n_words, bs.CHUNK_WORDS):
        hi = min(lo + bs.CHUNK_WORDS, n_words)
        x = bs.exhaustive_slices(n, lo, hi)
        out[:, lo:hi] = bs.config_eval_words(pc, x)
    if total % bs.WORD:
        out[:, -1] &= np.uint64((1 << (total % bs.WORD)) - 1)
    return out


def _popcount_words(words) -> int:
    import numpy as np
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(words).sum())
    u8 = words.view(np.uint8)
    return int(np.unpackbits(u8).sum())


class GoldenRef:
    """The healthy configuration's exhaustive response, backend-shaped.

    On the kernel backend this holds per-output uint64 words; on the
    scalar backend a plain output-bitmask list.  Either way,
    :meth:`errors_of` counts the differing (minterm, output) pairs of a
    defective overlay — 0 means the defective array still computes the
    golden function exactly.
    """

    def __init__(self, config: GNORPlaneConfig):
        if config.n_inputs > MAX_GOLDEN_INPUTS:
            raise ValueError(
                f"{config.n_inputs} inputs exceeds the exhaustive yield "
                f"envelope ({MAX_GOLDEN_INPUTS})")
        from repro import kernels
        self.config = config
        self.total_pairs = (1 << config.n_inputs) * max(config.n_outputs, 1)
        self._kernel = kernels.enabled()
        if self._kernel:
            from repro.kernels import bitslice as bs
            self._words = _kernel_output_words(bs.pack_config(config))
        else:
            self._table = _scalar_truth_table(config, {})

    @property
    def output_words(self):
        """The golden ``(n_outputs, n_words)`` response words.

        Kernel backend only (the batched yield path compares arena
        output words against these); tail word already masked.
        """
        if not self._kernel:
            raise RuntimeError(
                "golden output words exist only on the kernel backend")
        return self._words

    def errors_of(self, overlay: DefectOverlay,
                  config: Optional[GNORPlaneConfig] = None) -> int:
        """Differing (minterm, output) pairs of a defective machine.

        ``config`` overrides the evaluated programming (used by repair
        when a re-minimized or row-subset cover replaces the original);
        the comparison target stays the golden response.
        """
        target = config if config is not None else self.config
        if self._kernel:
            diff = _kernel_output_words(_patched_pack(target, overlay))
            diff ^= self._words
            return _popcount_words(diff)
        table = _scalar_truth_table(target, overlay)
        return sum(bin(a ^ b).count("1")
                   for a, b in zip(self._table, table))


def golden_of(config: GNORPlaneConfig) -> GoldenRef:
    """The golden reference of a healthy configuration."""
    return GoldenRef(config)


def defective_truth_table(config: GNORPlaneConfig,
                          overlay: DefectOverlay) -> List[int]:
    """Exhaustive output-bitmask table of the defective machine.

    Kernel-backed when enabled, scalar otherwise; results are identical
    (the differential tests assert it).  Exponential in the input
    count — analysis at scale goes through :class:`GoldenRef` instead.
    """
    from repro import kernels
    if kernels.enabled() and config.n_outputs <= 64:
        from repro.kernels import bitslice as bs
        words = _kernel_output_words(_patched_pack(config, overlay))
        total = 1 << config.n_inputs
        masks = bs._masks_from_output_words(words, total)
        return [int(m) for m in masks]
    return _scalar_truth_table(config, overlay)


__all__ = ["DefectOverlay", "GoldenRef", "MAX_GOLDEN_INPUTS",
           "defective_truth_table", "evaluate_defective", "golden_of",
           "overlay_from_map"]
