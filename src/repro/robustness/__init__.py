"""Defect-tolerant yield analysis of GNOR PLA fabrics.

The paper's area win (Table 1) assumes every ambipolar crosspoint
programs correctly; real CNT arrays are defect-prone.  This package
answers the manufacturing question the area model ignores: *what
fraction of fabricated arrays still computes the function, and can the
rest be repaired?*

* :mod:`repro.robustness.defective` — evaluate a programmed
  configuration *with defects injected* (multi-fault generalization of
  :mod:`repro.testgen.faults`), on either kernel backend;
* :mod:`repro.robustness.repair` — spare-aware repair: remap the cover
  around dead rows/columns of a :class:`SpareFabric`, re-minimize when
  a direct remap fails, and measure graceful degradation when full
  repair is impossible;
* :mod:`repro.robustness.yield_engine` — the Monte Carlo yield engine
  with Wilson confidence intervals, resumable via
  :mod:`repro.runner` checkpoints.
"""

from repro.robustness.defective import (DefectOverlay, GoldenRef,
                                        defective_truth_table,
                                        evaluate_defective, golden_of,
                                        overlay_from_map)
from repro.robustness.repair import (RepairOutcome, SpareFabric,
                                     repair_config)
from repro.robustness.yield_engine import (YieldReport, YieldSettings,
                                           estimate_yield, wilson_interval)

__all__ = ["DefectOverlay", "GoldenRef", "RepairOutcome", "SpareFabric",
           "YieldReport", "YieldSettings", "defective_truth_table",
           "estimate_yield", "evaluate_defective", "golden_of",
           "overlay_from_map", "repair_config", "wilson_interval"]
