"""Spare-aware repair of a defective GNOR fabric.

Extends the row-matching repair of :mod:`repro.core.fault` with the
full manufacturing story:

1. **clean** — the identity placement already computes the golden
   function (defects harmless or logically masked);
2. **remapped** — logical inputs are moved onto the least-defective
   physical input columns (spare columns included) and logical product
   rows are bipartite-matched onto compatible physical rows (spare rows
   included);
3. **reminimized** — when no perfect row matching exists, the cover is
   re-minimized (REDUCE → EXPAND → IRREDUNDANT on the surviving
   function) in the hope that a different — ideally smaller — set of
   product terms fits the surviving rows;
4. **degraded** — full repair is impossible: the maximum (partial)
   matching is placed anyway, unmatched product terms are dropped, and
   the outcome records the fraction of (minterm, output) pairs the
   crippled array still gets right — the graceful-degradation metric.

Every verdict is *verified by evaluation* against the golden response
(:class:`~repro.robustness.defective.GoldenRef`), never trusted from
the matching alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.defects import DefectMap, DefectType
from repro.core.gnor import InputConfig
from repro.logic.function import BooleanFunction
from repro.mapping.gnor_map import GNORPlaneConfig, map_cover_to_gnor
from repro.robustness.defective import GoldenRef, overlay_from_map

#: Repair outcome statuses, in decreasing order of health.
STATUS_CLEAN = "clean"
STATUS_REMAPPED = "remapped"
STATUS_REMINIMIZED = "reminimized"
STATUS_DEGRADED = "degraded"


@dataclass(frozen=True)
class SpareFabric:
    """Physical array geometry: the logical array plus spares.

    Attributes
    ----------
    n_inputs, n_outputs, n_products:
        Logical dimensions (from the programmed configuration).
    spare_rows:
        Extra physical product rows available for row remapping.
    spare_cols:
        Extra physical input-capable columns available for column
        remapping (output columns have no spares — an output pin is
        wired to the package).
    """

    n_inputs: int
    n_outputs: int
    n_products: int
    spare_rows: int = 0
    spare_cols: int = 0

    @classmethod
    def for_config(cls, config: GNORPlaneConfig, spare_rows: int = 0,
                   spare_cols: int = 0) -> "SpareFabric":
        if spare_rows < 0 or spare_cols < 0:
            raise ValueError("spare counts must be non-negative")
        return cls(config.n_inputs, config.n_outputs, config.n_products,
                   spare_rows, spare_cols)

    @property
    def n_physical_rows(self) -> int:
        return self.n_products + self.spare_rows

    @property
    def n_input_columns(self) -> int:
        """Input-capable physical columns (logical inputs + spares)."""
        return self.n_inputs + self.spare_cols

    @property
    def n_columns(self) -> int:
        return self.n_input_columns + self.n_outputs


@dataclass
class RepairOutcome:
    """Verified outcome of one repair attempt.

    Attributes
    ----------
    status:
        ``"clean"`` / ``"remapped"`` / ``"reminimized"`` /
        ``"degraded"``.
    exact:
        True when the (repaired) array computes the golden function on
        every (minterm, output) pair.
    correct_fraction:
        Fraction of (minterm, output) pairs computed correctly — 1.0
        when ``exact``.
    row_assignment, col_assignment:
        The placement that was evaluated (logical -> physical); rows
        missing from ``row_assignment`` were dropped (degraded mode).
    spare_rows_used, spare_cols_used:
        Spare resources the placement consumed.
    n_defects:
        Total defects in the sampled map.
    """

    status: str
    exact: bool
    correct_fraction: float
    row_assignment: Dict[int, int]
    col_assignment: Dict[int, int]
    spare_rows_used: int
    spare_cols_used: int
    n_defects: int


def _device_tolerates(needed: InputConfig,
                      defect: Optional[DefectType]) -> bool:
    """Whether a device with ``defect`` can serve requirement ``needed``."""
    if defect is None:
        return True
    if defect is DefectType.STUCK_ON:
        return False  # unconditional pull: fatal in every position
    # stuck off / PG leak: harmless exactly where nothing must conduct
    return needed is InputConfig.DROP


def _row_compatible(config: GNORPlaneConfig, r: int, q: int,
                    defect_map: DefectMap, col_assignment: Dict[int, int],
                    n_input_columns: int) -> bool:
    """Can logical row ``r`` live on physical row ``q``?"""
    for i in range(config.n_inputs):
        defect = defect_map.defect_at(q, col_assignment[i])
        if not _device_tolerates(config.and_plane[r][i], defect):
            return False
    for k in range(config.n_outputs):
        defect = defect_map.defect_at(q, n_input_columns + k)
        if not _device_tolerates(config.or_plane[k][r], defect):
            return False
    return True


def _max_matching(adjacency: List[List[int]]) -> Dict[int, int]:
    """Kuhn's augmenting-path maximum bipartite matching.

    Iterates logical rows and their candidate physical rows in
    ascending index order: the result is deterministic across processes
    (no hash-order dependence, which matters because the degraded-mode
    placement — hence the reported correct fraction — depends on which
    maximum matching gets picked) and prefers the identity-like layout.
    """
    n_physical = max((q for row in adjacency for q in row), default=-1) + 1
    owner = [-1] * n_physical  # physical row -> logical row

    def augment(r: int, visited: List[bool]) -> bool:
        for q in adjacency[r]:
            if not visited[q]:
                visited[q] = True
                holder = owner[q]
                if holder < 0 or augment(holder, visited):
                    owner[q] = r
                    return True
        return False

    for r in range(len(adjacency)):
        augment(r, [False] * n_physical)
    return {r: q for q, r in sorted(
        (q, r) for q, r in enumerate(owner) if r >= 0)}


def _match_rows(config: GNORPlaneConfig, fabric: SpareFabric,
                defect_map: DefectMap,
                col_assignment: Dict[int, int]) -> Dict[int, int]:
    """Maximum matching of logical rows onto physical rows (scalar)."""
    adjacency: List[List[int]] = [
        [q for q in range(fabric.n_physical_rows)
         if _row_compatible(config, r, q, defect_map, col_assignment,
                            fabric.n_input_columns)]
        for r in range(config.n_products)]
    return _max_matching(adjacency)


def _needs_matrix(config: GNORPlaneConfig):
    """Per-row device requirements as a ``(P, I+O)`` uint8 matrix.

    Entry ``[r, j]`` is 1 when logical row ``r`` programs a conducting
    device at checked position ``j`` (inputs first, then outputs) — the
    positions where a non-stuck-on defect is fatal.  Stuck-on defects
    are fatal everywhere, independent of the row (see
    :func:`_device_tolerates`), which is what makes the compatibility
    scan separable and vectorizable.
    """
    import numpy as np
    P, I, O = config.n_products, config.n_inputs, config.n_outputs
    needs = np.zeros((P, I + O), dtype=np.uint8)
    for r in range(P):
        for i in range(I):
            if config.and_plane[r][i] is not InputConfig.DROP:
                needs[r, i] = 1
        for k in range(O):
            if config.or_plane[k][r] is not InputConfig.DROP:
                needs[r, I + k] = 1
    return needs


def _defect_matrices(fabric: SpareFabric, defect_map: DefectMap):
    """The trial's defects as two ``(Q, n_columns)`` boolean matrices.

    ``stuck_on`` marks devices that pull unconditionally (fatal
    everywhere); ``other`` marks stuck-off / PG-leak devices (fatal
    only under a conducting requirement).  A handful of dict entries
    becomes the dense form every vectorized per-trial step reuses.
    """
    import numpy as np
    stuck_on = np.zeros((fabric.n_physical_rows, fabric.n_columns),
                        dtype=bool)
    other = np.zeros_like(stuck_on)
    for q, c, defect in defect_map.iter_defects():
        if defect is DefectType.STUCK_ON:
            stuck_on[q, c] = True
        else:
            other[q, c] = True
    return stuck_on, other


def _pick_columns_batch(fabric: SpareFabric, stuck_on,
                        other) -> Dict[int, int]:
    """:func:`_pick_columns` from dense defect matrices.

    Same scoring (stuck-on weighs 4, anything else 1) and the same
    ``(score, column)`` tie-break via a lexicographic sort, so the
    chosen columns are identical to the scalar scan.
    """
    import numpy as np
    nic = fabric.n_input_columns
    score = 4 * stuck_on[:, :nic].sum(axis=0, dtype=np.int64) + \
        other[:, :nic].sum(axis=0, dtype=np.int64)
    order = np.lexsort((np.arange(nic), score))
    chosen = sorted(int(c) for c in order[:fabric.n_inputs])
    return {i: chosen[i] for i in range(fabric.n_inputs)}


def _match_rows_batch(needs, config: GNORPlaneConfig, fabric: SpareFabric,
                      stuck_on, other,
                      col_assignment: Dict[int, int]) -> Dict[int, int]:
    """:func:`_match_rows` with the adjacency scan vectorized.

    The scalar scan probes every ``(logical row, physical row, device)``
    triple through dict lookups; here the whole adjacency falls out of
    one small matmul over the trial's dense defect matrices.  Candidate
    lists come out in the same ascending order, so
    :func:`_max_matching` returns the identical matching — the
    differential tests hold this to the scalar oracle.
    """
    import numpy as np
    checked = [col_assignment[i] for i in range(config.n_inputs)] + \
              [fabric.n_input_columns + k for k in range(config.n_outputs)]
    on_checked = stuck_on[:, checked]                         # (Q, I+O)
    other_checked = other[:, checked]
    healthy_rows = ~on_checked.any(axis=1)                    # (Q,)
    conflicts = needs @ other_checked.T.astype(np.uint8)      # (P, Q)
    compatible = healthy_rows[None, :] & (conflicts == 0)
    adjacency = [[int(q) for q in np.flatnonzero(compatible[r])]
                 for r in range(config.n_products)]
    return _max_matching(adjacency)


def _pick_columns(fabric: SpareFabric,
                  defect_map: DefectMap) -> Dict[int, int]:
    """Assign logical inputs to the least-defective physical columns.

    Stuck-on defects weigh heavier than stuck-off ones (they are fatal
    in every row position, not just conducting ones).  Ties break on
    the column index, so the choice is deterministic and prefers the
    identity layout.
    """
    scores: List[Tuple[int, int]] = []
    for c in range(fabric.n_input_columns):
        score = 0
        for q in range(fabric.n_physical_rows):
            defect = defect_map.defect_at(q, c)
            if defect is DefectType.STUCK_ON:
                score += 4
            elif defect is not None:
                score += 1
        scores.append((score, c))
    chosen = sorted(c for _score, c in sorted(scores)[:fabric.n_inputs])
    return {i: chosen[i] for i in range(fabric.n_inputs)}


def _spares_used(fabric: SpareFabric, row_assignment: Dict[int, int],
                 col_assignment: Dict[int, int]) -> Tuple[int, int]:
    rows = sum(1 for q in row_assignment.values() if q >= fabric.n_products)
    cols = sum(1 for c in col_assignment.values() if c >= fabric.n_inputs)
    return rows, cols


def _reminimized_config(function: BooleanFunction,
                        config: GNORPlaneConfig) -> Optional[GNORPlaneConfig]:
    """An alternative programming from one more REDUCE-EXPAND-IRREDUNDANT
    pass over the surviving function, or ``None`` when it degenerates."""
    from repro.espresso.expand import expand
    from repro.espresso.irredundant import irredundant
    from repro.espresso.reduce import reduce_cover

    from repro.logic.cover import Cover
    if not all(config.output_inverted):
        # phase-assigned configs program the *phased* cover; re-deriving
        # it against the unphased function's OFF-set would be unsound
        return None
    cover = Cover(config.n_inputs, config.n_outputs)
    # rebuild the cover the config was programmed from
    from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO, Cube
    field_of = {InputConfig.INVERT: BIT_ONE, InputConfig.PASS: BIT_ZERO,
                InputConfig.DROP: BIT_DASH}
    for r in range(config.n_products):
        inputs = 0
        for i, device in enumerate(config.and_plane[r]):
            inputs |= field_of[device] << (2 * i)
        outputs = sum(1 << k for k in range(config.n_outputs)
                      if config.or_plane[k][r] is InputConfig.PASS)
        if outputs:
            cover.append(Cube(config.n_inputs, inputs, outputs,
                              config.n_outputs))
    if not len(cover):
        return None
    try:
        reduced = reduce_cover(cover, function.dc_set)
        alt = irredundant(expand(reduced, function.off_set),
                          function.dc_set)
    except Exception:  # pragma: no cover - minimizer must not kill repair
        return None
    if not len(alt) or len(alt) > config.n_products:
        return None
    return map_cover_to_gnor(alt)


def _subset_config(config: GNORPlaneConfig,
                   kept_rows: List[int]) -> GNORPlaneConfig:
    """The configuration restricted to a subset of its product rows."""
    return GNORPlaneConfig(
        n_inputs=config.n_inputs,
        n_outputs=config.n_outputs,
        n_products=len(kept_rows),
        and_plane=[list(config.and_plane[r]) for r in kept_rows],
        or_plane=[[config.or_plane[k][r] for r in kept_rows]
                  for k in range(config.n_outputs)],
        output_inverted=list(config.output_inverted),
    )


def repair_config(config: GNORPlaneConfig, fabric: SpareFabric,
                  defect_map: DefectMap, golden: GoldenRef,
                  function: Optional[BooleanFunction] = None,
                  reminimize: bool = True) -> RepairOutcome:
    """Repair a defective fabric; every verdict is evaluation-verified.

    Parameters
    ----------
    config:
        The logical programming (must match ``fabric``'s logical
        dimensions).
    fabric:
        Physical geometry (spares included); ``defect_map`` must cover
        exactly ``fabric.n_physical_rows x fabric.n_columns``.
    golden:
        The healthy response to verify against.
    function:
        The Boolean function behind ``config``; enables the
        re-minimization fallback (step 3).
    reminimize:
        Disable to measure the pure remapping repair rate.
    """
    if (defect_map.n_rows, defect_map.n_columns) != \
            (fabric.n_physical_rows, fabric.n_columns):
        raise ValueError("defect map does not match the fabric geometry")
    n_defects = defect_map.n_defects()
    identity_rows = {r: r for r in range(config.n_products)}
    identity_cols = {i: i for i in range(config.n_inputs)}

    def verify(cfg: GNORPlaneConfig, rows: Dict[int, int],
               cols: Dict[int, int]) -> int:
        overlay = overlay_from_map(cfg, defect_map, rows, cols,
                                   fabric.n_input_columns)
        return golden.errors_of(overlay, cfg)

    # 1. clean: the raw placement may survive (harmless/masked defects)
    if verify(config, identity_rows, identity_cols) == 0:
        return RepairOutcome(STATUS_CLEAN, True, 1.0, identity_rows,
                             identity_cols, 0, 0, n_defects)

    # 2. remap: least-defective columns, then row matching
    col_assignment = _pick_columns(fabric, defect_map)
    row_assignment = _match_rows(config, fabric, defect_map, col_assignment)
    if len(row_assignment) == config.n_products:
        errors = verify(config, row_assignment, col_assignment)
        if errors == 0:
            sr, sc = _spares_used(fabric, row_assignment, col_assignment)
            return RepairOutcome(STATUS_REMAPPED, True, 1.0,
                                 row_assignment, col_assignment, sr, sc,
                                 n_defects)

    # 3. re-minimize: a different product-term set may fit the survivors
    if reminimize and function is not None:
        alt = _reminimized_config(function, config)
        if alt is not None:
            alt_rows = _match_rows(alt, fabric, defect_map, col_assignment)
            if len(alt_rows) == alt.n_products and \
                    verify(alt, alt_rows, col_assignment) == 0:
                sr, sc = _spares_used(fabric, alt_rows, col_assignment)
                return RepairOutcome(STATUS_REMINIMIZED, True, 1.0,
                                     alt_rows, col_assignment, sr, sc,
                                     n_defects)

    # 4. degrade gracefully: place the maximum partial matching, drop
    #    the unmatched product terms, measure what still works
    kept = sorted(row_assignment)
    sub = _subset_config(config, kept)
    sub_rows = {j: row_assignment[r] for j, r in enumerate(kept)}
    errors = verify(sub, sub_rows, col_assignment)
    fraction = 1.0 - errors / golden.total_pairs
    sr, sc = _spares_used(fabric, sub_rows, col_assignment)
    return RepairOutcome(STATUS_DEGRADED, errors == 0, fraction,
                         {r: row_assignment[r] for r in kept},
                         col_assignment, sr, sc, n_defects)


def repair_config_batch(config: GNORPlaneConfig, fabric: SpareFabric,
                        defect_maps: List[DefectMap], golden: GoldenRef,
                        function: Optional[BooleanFunction] = None,
                        reminimize: bool = True) -> List[RepairOutcome]:
    """:func:`repair_config` over many defect maps, verified in bulk.

    Decision-for-decision identical to the scalar flow — the placement
    heuristics (:func:`_pick_columns`, :func:`_match_rows`) stay scalar
    per trial, but each stage's *evaluation verification* runs once for
    all surviving trials against one tiled
    :class:`~repro.kernels.batcharena.ConfigArena` instead of repacking
    the configuration per trial.  The re-minimized candidate is a pure
    function of ``(function, config)``, so stage 3 computes it once for
    the whole batch.  Outcomes (status, exactness, fractions, spare
    usage) are bit-identical to per-trial :func:`repair_config` — the
    differential tests assert it.

    Requires the NumPy kernel backend (``golden`` must hold its word
    response).
    """
    from repro.kernels.batcharena import ConfigArena

    for defect_map in defect_maps:
        if (defect_map.n_rows, defect_map.n_columns) != \
                (fabric.n_physical_rows, fabric.n_columns):
            raise ValueError("defect map does not match the fabric geometry")
    n = len(defect_maps)
    golden_words = golden.output_words
    n_defects = [m.n_defects() for m in defect_maps]
    identity_rows = {r: r for r in range(config.n_products)}
    identity_cols = {i: i for i in range(config.n_inputs)}
    outcomes: List[Optional[RepairOutcome]] = [None] * n

    def batch_errors(cfg: GNORPlaneConfig, trials: List[int],
                     rows_of, cols_of) -> List[int]:
        """One arena verification pass: errors of every listed trial."""
        if not trials:
            return []
        arena = ConfigArena.from_config(cfg, copies=len(trials))
        for slot, t in enumerate(trials):
            arena.patch_overlay(slot, overlay_from_map(
                cfg, defect_maps[t], rows_of(t), cols_of(t),
                fabric.n_input_columns))
        return [int(e) for e in arena.error_counts_vs(golden_words)]

    # 1. clean: the raw placement may survive (harmless/masked defects)
    all_trials = list(range(n))
    errors1 = batch_errors(config, all_trials,
                           lambda t: identity_rows, lambda t: identity_cols)
    pending: List[int] = []
    for t, errors in zip(all_trials, errors1):
        if errors == 0:
            outcomes[t] = RepairOutcome(STATUS_CLEAN, True, 1.0,
                                        identity_rows, identity_cols, 0, 0,
                                        n_defects[t])
        else:
            pending.append(t)

    # 2. remap: least-defective columns, then row matching
    needs = _needs_matrix(config)
    matrices = {t: _defect_matrices(fabric, defect_maps[t])
                for t in pending}
    col_assignment: Dict[int, Dict[int, int]] = {}
    row_assignment: Dict[int, Dict[int, int]] = {}
    for t in pending:
        stuck_on, other = matrices[t]
        col_assignment[t] = _pick_columns_batch(fabric, stuck_on, other)
        row_assignment[t] = _match_rows_batch(needs, config, fabric,
                                              stuck_on, other,
                                              col_assignment[t])
    full = [t for t in pending
            if len(row_assignment[t]) == config.n_products]
    errors2 = dict(zip(full, batch_errors(
        config, full, row_assignment.get, col_assignment.get)))
    still: List[int] = []
    for t in pending:
        if errors2.get(t) == 0:
            sr, sc = _spares_used(fabric, row_assignment[t],
                                  col_assignment[t])
            outcomes[t] = RepairOutcome(STATUS_REMAPPED, True, 1.0,
                                        row_assignment[t],
                                        col_assignment[t], sr, sc,
                                        n_defects[t])
        else:
            still.append(t)
    pending = still

    # 3. re-minimize: a different product-term set may fit the survivors
    if reminimize and function is not None and pending:
        alt = _reminimized_config(function, config)
        if alt is not None:
            alt_needs = _needs_matrix(alt)
            alt_rows = {t: _match_rows_batch(alt_needs, alt, fabric,
                                             matrices[t][0], matrices[t][1],
                                             col_assignment[t])
                        for t in pending}
            candidates = [t for t in pending
                          if len(alt_rows[t]) == alt.n_products]
            errors3 = dict(zip(candidates, batch_errors(
                alt, candidates, alt_rows.get, col_assignment.get)))
            still = []
            for t in pending:
                if errors3.get(t) == 0:
                    sr, sc = _spares_used(fabric, alt_rows[t],
                                          col_assignment[t])
                    outcomes[t] = RepairOutcome(STATUS_REMINIMIZED, True,
                                                1.0, alt_rows[t],
                                                col_assignment[t], sr, sc,
                                                n_defects[t])
                else:
                    still.append(t)
            pending = still

    # 4. degrade gracefully: place the maximum partial matching, drop
    #    the unmatched product terms, measure what still works
    if pending:
        kept = {t: sorted(row_assignment[t]) for t in pending}
        arena = ConfigArena.from_row_subsets(
            config, [kept[t] for t in pending])
        for slot, t in enumerate(pending):
            sub = _subset_config(config, kept[t])
            sub_rows = {j: row_assignment[t][r]
                        for j, r in enumerate(kept[t])}
            arena.patch_overlay(slot, overlay_from_map(
                sub, defect_maps[t], sub_rows, col_assignment[t],
                fabric.n_input_columns))
        errors4 = arena.error_counts_vs(golden_words)
        for slot, t in enumerate(pending):
            errors = int(errors4[slot])
            fraction = 1.0 - errors / golden.total_pairs
            sub_rows = {j: row_assignment[t][r]
                        for j, r in enumerate(kept[t])}
            sr, sc = _spares_used(fabric, sub_rows, col_assignment[t])
            outcomes[t] = RepairOutcome(
                STATUS_DEGRADED, errors == 0, fraction,
                {r: row_assignment[t][r] for r in kept[t]},
                col_assignment[t], sr, sc, n_defects[t])

    return outcomes  # type: ignore[return-value]


__all__ = ["RepairOutcome", "STATUS_CLEAN", "STATUS_DEGRADED",
           "STATUS_REMAPPED", "STATUS_REMINIMIZED", "SpareFabric",
           "repair_config", "repair_config_batch"]
