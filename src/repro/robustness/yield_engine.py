"""Monte Carlo manufacturing-yield engine.

``estimate_yield`` samples per-crosspoint defect maps of a benchmark's
GNOR fabric (independent or row-correlated statistics), pushes every
sample through the spare-aware repair pass of
:mod:`repro.robustness.repair`, and aggregates:

* **raw yield** — fraction of arrays whose identity placement already
  computes the golden function (defects absent, harmless, or logically
  masked);
* **repaired yield** — fraction computing it exactly after remapping /
  re-minimization on the spare-equipped fabric;
* **graceful degradation** — over the irreparable remainder, the mean
  and worst fraction of (minterm, output) pairs still correct;

each yield with a Wilson score confidence interval.

Sampling is chunked and dispatched through :func:`repro.runner.run_tasks`:
chunks are crash-isolated, retried, and checkpointed, so a sweep killed
mid-run resumes with ``resume=True`` and produces a bit-identical
report.  Determinism holds across any job count because every sample's
defect map is seeded from the base seed and the sample index alone, and
chunks are aggregated in index order.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import runner as resilient

#: Samples per runner task: big enough to amortize the per-worker
#: benchmark synthesis, small enough that a killed worker loses little.
CHUNK_SIZE = 100


@dataclass(frozen=True)
class YieldSettings:
    """Everything that defines a yield experiment (JSON-roundtrippable).

    Attributes
    ----------
    benchmark:
        Registry name (``max46`` / ``apla`` / ``t2`` / synthetic).
    samples:
        Monte Carlo sample count.
    seed:
        Base seed; sample ``j`` draws its defect map from
        ``seed * 1_000_003 + j``, so reports are reproducible and
        resumable bit-for-bit.
    p_stuck_off, p_stuck_on, p_pg_leak:
        Per-device defect rates (see :class:`~repro.core.defects.DefectModel`).
    spare_rows, spare_cols:
        Fabric redundancy available to the repair pass.
    correlated:
        Sample row-correlated maps
        (:meth:`~repro.core.defects.DefectMap.sample_row_correlated`).
    reminimize:
        Allow the repair pass its re-minimization fallback.
    tech:
        Technology spec (registry name or descriptor-file path) the
        experiment runs under; workers resolve it via
        :func:`repro.tech.use`, and the artifact key separates by its
        content digest.
    """

    benchmark: str
    samples: int
    seed: int = 0
    p_stuck_off: float = 0.0014
    p_stuck_on: float = 0.0006
    p_pg_leak: float = 0.0
    spare_rows: int = 2
    spare_cols: int = 1
    correlated: bool = False
    reminimize: bool = True
    tech: str = "cnfet"


@dataclass
class YieldReport:
    """Aggregated outcome of a yield experiment.

    All fields derive deterministically from the per-sample outcomes,
    so two runs with the same :class:`YieldSettings` — sequential,
    parallel, or resumed from a checkpoint — render byte-identical
    reports.
    """

    settings: YieldSettings
    n_inputs: int
    n_outputs: int
    n_products: int
    samples: int
    raw_successes: int
    repaired_successes: int
    status_counts: Dict[str, int]
    mean_defects: float
    degraded_fractions: List[float] = field(default_factory=list)
    spare_rows_used_max: int = 0
    spare_cols_used_max: int = 0

    @property
    def raw_yield(self) -> float:
        return self.raw_successes / self.samples if self.samples else 0.0

    @property
    def repaired_yield(self) -> float:
        return self.repaired_successes / self.samples if self.samples else 0.0

    def raw_interval(self, z: float = 1.96) -> Tuple[float, float]:
        return wilson_interval(self.raw_successes, self.samples, z)

    def repaired_interval(self, z: float = 1.96) -> Tuple[float, float]:
        return wilson_interval(self.repaired_successes, self.samples, z)

    def degradation(self) -> Tuple[float, float]:
        """(mean, worst) correct fraction over irreparable samples.

        Both are 1.0 when every sample was repaired — nothing degraded.
        """
        if not self.degraded_fractions:
            return (1.0, 1.0)
        return (sum(self.degraded_fractions) / len(self.degraded_fractions),
                min(self.degraded_fractions))

    def to_json(self) -> dict:
        mean_frac, worst_frac = self.degradation()
        raw_lo, raw_hi = self.raw_interval()
        rep_lo, rep_hi = self.repaired_interval()
        return {
            "settings": asdict(self.settings),
            "array": {"inputs": self.n_inputs, "outputs": self.n_outputs,
                      "products": self.n_products},
            "samples": self.samples,
            "raw_yield": round(self.raw_yield, 6),
            "raw_ci95": [round(raw_lo, 6), round(raw_hi, 6)],
            "repaired_yield": round(self.repaired_yield, 6),
            "repaired_ci95": [round(rep_lo, 6), round(rep_hi, 6)],
            "status_counts": dict(sorted(self.status_counts.items())),
            "mean_defects_per_array": round(self.mean_defects, 4),
            "irreparable": len(self.degraded_fractions),
            "degraded_mean_correct": round(mean_frac, 6),
            "degraded_worst_correct": round(worst_frac, 6),
            "max_spare_rows_used": self.spare_rows_used_max,
            "max_spare_cols_used": self.spare_cols_used_max,
        }


def wilson_interval(successes: int, n: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because Monte Carlo yields
    sit near 0 or 1 exactly where the normal interval misbehaves.
    """
    if n <= 0:
        return (0.0, 1.0)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    # the min/max with p absorbs float rounding at the 0/1 endpoints:
    # the interval must always contain the point estimate
    return (min(p, max(0.0, center - half)),
            max(p, min(1.0, center + half)))


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-process cache of (function, config, fabric, golden) so one worker
#: synthesizes each benchmark once, not once per chunk.
_WORKER_CACHE: dict = {}


def _prepared(settings: YieldSettings):
    key = (settings.benchmark, settings.spare_rows, settings.spare_cols,
           settings.tech)
    entry = _WORKER_CACHE.get(key)
    if entry is None:
        from repro.bench.mcnc import benchmark_function, get_benchmark
        from repro.mapping.gnor_map import map_cover_to_gnor
        from repro.robustness.defective import golden_of
        from repro.robustness.repair import SpareFabric

        function = benchmark_function(get_benchmark(settings.benchmark),
                                      seed=0)
        config = map_cover_to_gnor(function.on_set)
        fabric = SpareFabric.for_config(config, settings.spare_rows,
                                        settings.spare_cols)
        entry = (function, config, fabric, golden_of(config))
        _WORKER_CACHE.clear()  # one benchmark per worker at a time
        _WORKER_CACHE[key] = entry
    return entry


def run_yield_chunk(payload: dict) -> List[dict]:
    """Worker entry point: evaluate one chunk of samples.

    ``payload`` is JSON-shaped (it doubles as the checkpoint key's
    sibling): the settings dict plus the chunk's ``start`` index and
    ``count``.  Returns one JSON-shaped outcome record per sample.
    """
    settings = YieldSettings(**payload["settings"])
    from repro import eval as batch_eval
    from repro import perf
    from repro import tech as tech_mod
    from repro.core.defects import DefectMap, DefectModel
    from repro.robustness.repair import repair_config, repair_config_batch

    with tech_mod.use(settings.tech):
        return _run_chunk_under_tech(settings, payload, batch_eval, perf,
                                     DefectMap, DefectModel, repair_config,
                                     repair_config_batch)


def _run_chunk_under_tech(settings, payload, batch_eval, perf, DefectMap,
                          DefectModel, repair_config, repair_config_batch):
    function, config, fabric, golden = _prepared(settings)
    model = DefectModel(p_stuck_off=settings.p_stuck_off,
                        p_stuck_on=settings.p_stuck_on,
                        p_pg_leak=settings.p_pg_leak)
    indices = list(range(payload["start"],
                         payload["start"] + payload["count"]))
    defect_maps = []
    for j in indices:
        map_seed = settings.seed * 1_000_003 + j
        if settings.correlated:
            defect_maps.append(DefectMap.sample_row_correlated(
                fabric.n_physical_rows, fabric.n_columns, model, map_seed))
        else:
            defect_maps.append(DefectMap.sample(
                fabric.n_physical_rows, fabric.n_columns, model, map_seed))

    if batch_eval.batch_enabled():
        # all trials of the chunk verified against one tiled arena;
        # bit-identical outcomes to the per-trial loop below
        perf.count("eval.batch.trials", len(indices))
        repaired = repair_config_batch(config, fabric, defect_maps, golden,
                                       function=function,
                                       reminimize=settings.reminimize)
    else:
        repaired = [repair_config(config, fabric, defect_map, golden,
                                  function=function,
                                  reminimize=settings.reminimize)
                    for defect_map in defect_maps]

    outcomes = []
    for j, outcome in zip(indices, repaired):
        outcomes.append({
            "i": j,
            "defects": outcome.n_defects,
            "raw": outcome.status == "clean",
            "exact": outcome.exact,
            "status": outcome.status,
            "frac": outcome.correct_fraction,
            "sr": outcome.spare_rows_used,
            "sc": outcome.spare_cols_used,
        })
    return outcomes


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
def estimate_yield(settings: YieldSettings, jobs: int = 1,
                   checkpoint: Optional[str] = None, resume: bool = False,
                   timeout: Optional[float] = None,
                   retries: int = 2) -> YieldReport:
    """Run the Monte Carlo experiment through the resilient runner.

    ``checkpoint``/``resume`` give crash-resumable sweeps; see
    :mod:`repro.runner` for the timeout/retry semantics.  The report is
    bit-identical for any ``jobs`` value and across resumes.

    The aggregated report is a content-addressed artifact (kind
    ``yield``) keyed by the full settings: a repeated run with the same
    settings, kernel backend and technology digest is served from the
    synthesis service's store without touching the Monte Carlo sweep.
    ``REPRO_CACHE=off`` always recomputes.
    """
    from repro import tech as tech_mod
    from repro.store.service import get_service

    def compute() -> YieldReport:
        settings_dict = asdict(settings)
        tasks = []
        for start in range(0, settings.samples, CHUNK_SIZE):
            count = min(CHUNK_SIZE, settings.samples - start)
            key = {"bench": settings.benchmark, "seed": settings.seed,
                   "start": start, "count": count}
            payload = {"settings": settings_dict, "start": start,
                       "count": count}
            tasks.append((key, payload))

        report = resilient.run_tasks(
            run_yield_chunk, tasks, jobs=jobs, timeout=timeout,
            retries=retries, checkpoint=checkpoint, resume=resume)
        report.raise_on_failure()
        outcomes = [record for chunk in report.values() for record in chunk]
        return _aggregate(settings, outcomes)

    # settings.tech is authoritative for the whole experiment: the
    # artifact key (via the active digest) and any tech-parameterized
    # model call both resolve under it.
    with tech_mod.use(settings.tech):
        return get_service().yield_run(settings, compute)


def _aggregate(settings: YieldSettings,
               outcomes: List[dict]) -> YieldReport:
    from repro.bench.mcnc import benchmark_function, get_benchmark
    from repro.mapping.gnor_map import map_cover_to_gnor

    config = map_cover_to_gnor(
        benchmark_function(get_benchmark(settings.benchmark), seed=0).on_set)

    status_counts: Dict[str, int] = {}
    degraded = []
    raw = exact = 0
    defects_total = 0
    sr_max = sc_max = 0
    for record in outcomes:
        status_counts[record["status"]] = \
            status_counts.get(record["status"], 0) + 1
        raw += bool(record["raw"])
        exact += bool(record["exact"])
        defects_total += record["defects"]
        sr_max = max(sr_max, record["sr"])
        sc_max = max(sc_max, record["sc"])
        if not record["exact"]:
            degraded.append(record["frac"])
    n = len(outcomes)
    return YieldReport(
        settings=settings,
        n_inputs=config.n_inputs,
        n_outputs=config.n_outputs,
        n_products=config.n_products,
        samples=n,
        raw_successes=raw,
        repaired_successes=exact,
        status_counts=status_counts,
        mean_defects=defects_total / n if n else 0.0,
        degraded_fractions=degraded,
        spare_rows_used_max=sr_max,
        spare_cols_used_max=sc_max,
    )


__all__ = ["CHUNK_SIZE", "YieldReport", "YieldSettings", "estimate_yield",
           "run_yield_chunk", "wilson_interval"]
