"""Galois-LFSR pseudo-random vector streams (BIST-style load source).

The batch evaluation arena (:mod:`repro.kernels.batcharena`) wants its
input vectors in bulk: deterministic, seeded, cheap to generate, and
word-packed straight into the bit-sliced layout the kernels consume.
Linear-feedback shift registers are the classic built-in-self-test
answer — a maximal-length register of width ``w`` walks every nonzero
``w``-bit vector exactly once per period, with two integer operations
per step.

This module implements the *Galois* (internal-XOR) form: the state
shifts right one bit per step and the feedback polynomial is XORed in
whenever the output bit is 1.  The taps table lists one primitive
polynomial per width (the standard XAPP-052 selections), so every
listed width is maximal: ``period == 2**width - 1``.  The differential
tests verify this exhaustively for the small widths.

Streams are deterministic functions of ``(width, seed)`` alone — two
processes (or a resumed run) asking for the same stream get identical
vectors, which is what lets LFSR-sampled equivalence checks and cached
batch evaluations be content-addressed.

Everything except :meth:`GaloisLFSR.word_slices` is pure Python, so the
scalar kernel backend can consume the same streams vector by vector.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

#: Primitive-polynomial tap positions per register width (exponents of
#: the feedback polynomial, ``width`` included, constant term implied).
#: Each entry yields a maximal-length sequence: period ``2**w - 1``.
PRIMITIVE_TAPS = {
    2: (2, 1), 3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 9: (9, 5), 10: (10, 7), 11: (11, 9),
    12: (12, 6, 4, 1), 13: (13, 4, 3, 1), 14: (14, 5, 3, 1), 15: (15, 14),
    16: (16, 15, 13, 4), 17: (17, 14), 18: (18, 11), 19: (19, 6, 2, 1),
    20: (20, 17), 21: (21, 19), 22: (22, 21), 23: (23, 18),
    24: (24, 23, 22, 17), 25: (25, 22), 26: (26, 6, 2, 1),
    27: (27, 5, 2, 1), 28: (28, 25), 29: (29, 27), 30: (30, 6, 4, 1),
    31: (31, 28), 32: (32, 22, 2, 1),
}


def _mask_of(width: int, taps) -> int:
    """The Galois feedback mask of a tap tuple.

    For polynomial ``x^w + x^a + ... + 1`` the right-shifting Galois
    register XORs bit ``w-1`` (the shifted-out ``x^w`` term) and bit
    ``a-1`` for every intermediate tap ``a``.
    """
    mask = 1 << (width - 1)
    for tap in taps:
        if tap == width:
            continue
        if not 0 < tap < width:
            raise ValueError(f"tap {tap} outside register width {width}")
        mask |= 1 << (tap - 1)
    return mask


class GaloisLFSR:
    """A seeded maximal-length Galois LFSR over ``width`` bits.

    Parameters
    ----------
    width:
        Register width in bits (2..32 with the built-in taps table;
        wider registers need explicit ``taps``).
    seed:
        Any integer; reduced to a *nonzero* initial state as
        ``seed % (2**width - 1) + 1``, so every seed is legal and the
        all-zeros lock-up state is unreachable.
    taps:
        Optional explicit polynomial exponents (``width`` itself may be
        included); defaults to the primitive entry for ``width``.

    The stream of states is the vector stream: state ``t`` is input
    vector ``t``, bit ``i`` of the state is input variable ``i``.
    """

    __slots__ = ("width", "seed", "taps", "_mask", "_state")

    def __init__(self, width: int, seed: int = 0,
                 taps: Optional[tuple] = None):
        if width < 2:
            raise ValueError("LFSR width must be at least 2")
        if taps is None:
            try:
                taps = PRIMITIVE_TAPS[width]
            except KeyError:
                raise ValueError(
                    f"no built-in primitive polynomial for width {width}; "
                    f"pass taps= explicitly") from None
        self.width = width
        self.seed = seed
        self.taps = tuple(taps)
        self._mask = _mask_of(width, self.taps)
        self._state = seed % ((1 << width) - 1) + 1

    @property
    def period(self) -> int:
        """Sequence length before the state repeats (maximal taps)."""
        return (1 << self.width) - 1

    @property
    def state(self) -> int:
        """The current register state (the *next* vector emitted)."""
        return self._state

    def step(self) -> int:
        """Emit the current state and advance the register once."""
        state = self._state
        if state & 1:
            self._state = (state >> 1) ^ self._mask
        else:
            self._state = state >> 1
        return state

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.step()

    def states(self, count: int) -> List[int]:
        """The next ``count`` states as plain integers (minterm indices)."""
        return [self.step() for _ in range(count)]

    def vectors(self, count: int) -> List[List[int]]:
        """The next ``count`` states as 0/1 bit lists (LSB = input 0)."""
        return [[(state >> i) & 1 for i in range(self.width)]
                for state in self.states(count)]

    def word_slices(self, n_words: int):
        """The next ``64 * n_words`` vectors, bit-sliced for the kernels.

        Returns a ``(width, n_words)`` uint64 array in the layout of
        :func:`repro.kernels.bitslice.exhaustive_slices`: bit ``t`` of
        word ``w`` of row ``i`` is input ``i`` of vector ``64*w + t``.
        Requires NumPy (kernel paths only).
        """
        from repro.kernels import bitslice
        return bitslice.pack_minterms(self.states(n_words * bitslice.WORD),
                                      self.width)


def stream_spec(width: int, n_words: int, seed: int = 0) -> dict:
    """A JSON-shaped description of one word-packed LFSR stream.

    Cache keys and cross-process task payloads carry this instead of
    the vectors themselves: the stream is a pure function of the spec.
    """
    return {"kind": "lfsr", "width": int(width), "words": int(n_words),
            "seed": int(seed)}


def stream_minterms(spec: dict) -> List[int]:
    """Materialize a stream spec as plain minterm integers.

    Dispatches on ``spec["kind"]``: ``lfsr`` specs
    (:func:`stream_spec`) expand here; ``dataset`` specs
    (:func:`repro.workloads.datasets.dataset_stream_spec`) delegate to
    the workloads package, so every stream consumer — the evaluation
    arena, the store's ``eval_batch`` kind, the serve layer — accepts
    dataset rows wherever it accepts LFSR vectors.
    """
    kind = spec.get("kind")
    if kind == "dataset":
        from repro.workloads import datasets
        return datasets.dataset_stream_minterms(spec)
    if kind != "lfsr":
        raise ValueError(f"not a known stream spec: {spec!r}")
    lfsr = GaloisLFSR(spec["width"], seed=spec["seed"])
    return lfsr.states(spec["words"] * 64)


__all__ = ["GaloisLFSR", "PRIMITIVE_TAPS", "stream_minterms", "stream_spec"]
