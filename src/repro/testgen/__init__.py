"""Test generation for programmed ambipolar-CNFET PLAs.

The paper's fault-tolerance story (Section 5, [6]) presumes defects can
be *located* so product terms can be remapped around them; this
subpackage supplies that missing link:

* :mod:`repro.testgen.faults` — the crosspoint fault model (stuck-off /
  stuck-on per programmed device) and a fast symbolic fault simulator
  over :class:`~repro.mapping.gnor_map.GNORPlaneConfig`;
* :mod:`repro.testgen.atpg` — automatic test-pattern generation:
  fault simulation over candidate vectors, greedy test-set compaction,
  coverage reporting and redundant-fault identification;
* :mod:`repro.testgen.lfsr` — seeded maximal-length Galois LFSRs, the
  BIST-style pseudo-random vector source of the batched evaluation
  path (:mod:`repro.eval`).
"""

from repro.testgen.faults import (Fault, FaultSite, FaultSimulator,
                                  enumerate_faults)
from repro.testgen.atpg import (ATPGResult, deterministic_tests,
                                generate_tests, locate_fault)
from repro.testgen.lfsr import GaloisLFSR, stream_minterms, stream_spec

__all__ = [
    "Fault",
    "FaultSite",
    "FaultSimulator",
    "enumerate_faults",
    "ATPGResult",
    "generate_tests",
    "deterministic_tests",
    "locate_fault",
    "GaloisLFSR",
    "stream_minterms",
    "stream_spec",
]
