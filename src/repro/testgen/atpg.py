"""Automatic test-pattern generation and fault location.

The flow is classical PLA testing: enumerate single crosspoint faults,
fault-simulate a candidate vector pool (exhaustive for small input
counts, seeded random beyond), pick a compact test set by greedy set
cover, and report coverage with the undetectable (redundant) faults
identified.  ``locate_fault`` inverts the process: given the observed
response of a physical array to the test set, return the candidate
faults consistent with it — the diagnosis step that feeds
:class:`~repro.core.fault.FaultTolerantPLA` repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.mapping.gnor_map import GNORPlaneConfig
from repro.testgen.faults import Fault, FaultSimulator, FaultSite, enumerate_faults


@dataclass
class ATPGResult:
    """Outcome of test generation.

    Attributes
    ----------
    tests:
        The compacted test set (input vectors).
    coverage:
        Detected / detectable fraction over all enumerated faults.
    detected, undetected:
        The fault partitions (undetected = redundant under the
        candidate pool).
    candidate_pool_size:
        Vectors fault-simulated before compaction.
    """

    tests: List[List[int]]
    coverage: float
    detected: List[Fault]
    undetected: List[Fault]
    candidate_pool_size: int

    def n_tests(self) -> int:
        """Size of the compacted test set."""
        return len(self.tests)


def _candidate_pool(n_inputs: int, exhaustive_limit: int, samples: int,
                    seed: int,
                    rng: Optional[random.Random] = None) -> List[List[int]]:
    if n_inputs <= exhaustive_limit:
        return [[(m >> i) & 1 for i in range(n_inputs)]
                for m in range(1 << n_inputs)]
    if rng is None:
        rng = random.Random(seed)
    pool = []
    seen: Set[int] = set()
    for _ in range(samples):
        m = rng.getrandbits(n_inputs)
        if m not in seen:
            seen.add(m)
            pool.append([(m >> i) & 1 for i in range(n_inputs)])
    return pool


def _detection_table(config: GNORPlaneConfig, faults: List[Fault],
                     pool: Sequence[Sequence[int]]) -> Dict[int, Set[int]]:
    """``{vector_index: detected fault indices}`` over a vector pool.

    Bit-sliced when the kernels are enabled; the scalar fallback runs
    the (vector, fault) double loop through the symbolic simulator.
    Both produce identical sets in identical insertion order, so the
    greedy compaction downstream is deterministic across backends.
    """
    from repro import kernels
    if kernels.enabled() and pool:
        return kernels.bitslice.detection_sets(config, faults, pool)
    simulator = FaultSimulator(config)
    detection: Dict[int, Set[int]] = {}
    for vi, vector in enumerate(pool):
        good = simulator.evaluate(vector)
        caught: Set[int] = set()
        for fi, fault in enumerate(faults):
            if simulator.evaluate(vector, fault) != good:
                caught.add(fi)
        if caught:
            detection[vi] = caught
    return detection


def generate_tests(config: GNORPlaneConfig, exhaustive_limit: int = 10,
                   samples: int = 512, seed: int = 0,
                   rng: Optional[random.Random] = None) -> ATPGResult:
    """Generate a compact single-fault test set for a configuration.

    Greedy set cover: repeatedly pick the candidate vector detecting the
    most still-uncovered faults.  Coverage is measured against every
    enumerated non-trivially-redundant fault.  The random candidate
    pool (used above ``exhaustive_limit`` inputs) is seeded by ``seed``
    or driven by an explicit ``rng`` for reproducible composition.
    """
    faults = enumerate_faults(config)
    pool = _candidate_pool(config.n_inputs, exhaustive_limit, samples, seed,
                           rng=rng)
    detection = _detection_table(config, faults, pool)

    detectable: Set[int] = set()
    for caught in detection.values():
        detectable |= caught

    tests: List[List[int]] = []
    uncovered = set(detectable)
    while uncovered:
        best_vi = max(detection, key=lambda vi: len(detection[vi] & uncovered))
        gain = detection[best_vi] & uncovered
        if not gain:
            break
        tests.append(pool[best_vi])
        uncovered -= gain

    detected = [faults[fi] for fi in sorted(detectable)]
    undetected = [faults[fi] for fi in range(len(faults))
                  if fi not in detectable]
    coverage = len(detectable) / len(faults) if faults else 1.0
    return ATPGResult(tests=tests, coverage=coverage, detected=detected,
                      undetected=undetected,
                      candidate_pool_size=len(pool))


def locate_fault(config: GNORPlaneConfig, tests: Sequence[Sequence[int]],
                 observed: Sequence[Sequence[int]]) -> List[Optional[Fault]]:
    """Diagnose which single faults explain an observed response.

    ``observed[j]`` is the physical array's output for ``tests[j]``.
    Returns the consistent candidates: ``None`` in the list means "the
    healthy machine also matches" (no fault needed).
    """
    simulator = FaultSimulator(config)
    observed = [list(row) for row in observed]
    candidates: List[Optional[Fault]] = []
    if all(simulator.evaluate(test) == obs
           for test, obs in zip(tests, observed)):
        candidates.append(None)
    for fault in enumerate_faults(config):
        if all(simulator.evaluate(test, fault) == obs
               for test, obs in zip(tests, observed)):
            candidates.append(fault)
    return candidates


# ----------------------------------------------------------------------
# deterministic ATPG (classical two-level crosspoint tests)
# ----------------------------------------------------------------------
def _minterm_of(cover: "Cover") -> Optional[List[int]]:
    """Any minterm of a non-empty single-output cover, as a 0/1 vector."""
    for cube in cover.cubes:
        if cube.is_empty():
            continue
        vector = []
        for var in range(cube.n_inputs):
            field = cube.field(var)
            vector.append(1 if field == 0b10 else 0)  # BIT_ONE else 0
        return vector
    return None


def _and_not_others(cube, others, n_inputs: int) -> Optional[List[int]]:
    """A minterm inside ``cube`` covered by none of ``others``.

    Computed by iterated sharp (``region \\ o`` cube by cube), which is
    far cheaper than complementing the whole ``others`` cover per fault.
    """
    from repro.logic.cover import Cover as _Cover
    from repro.logic.cube import Cube as _Cube

    region = [_Cube(n_inputs, cube.inputs, 1, 1)]
    for other in others:
        blocker = _Cube(n_inputs, other.inputs, 1, 1)
        next_region = []
        for piece in region:
            if not piece.intersects(blocker):
                next_region.append(piece)
                continue
            if blocker.contains(piece):
                continue
            # piece \\ blocker via the blocker's disjoint sharp
            for comp in blocker.complement_cubes():
                inter = piece.intersection(comp)
                if inter is not None:
                    next_region.append(inter)
        region = next_region
        if not region:
            return None
    return _minterm_of(_Cover(n_inputs, 1, region))


def deterministic_tests(config: GNORPlaneConfig) -> ATPGResult:
    """Targeted tests per fault via the cube algebra (near-complete).

    For every enumerable fault a closed-form excitation condition is
    solved exactly with cover complementation:

    * **OR stuck-on (k, r)** — any minterm where output ``k`` is 0;
    * **OR stuck-off (k, r)** / **AND stuck-on (r, *)** — a minterm of
      product ``r`` covered by no *other* product of an affected output
      (none exists = the tap/product is redundant: undetectable);
    * **AND stuck-off (r, i)** — a minterm of product ``r`` with input
      ``i``'s literal flipped, outside the good cover of an affected
      output.

    The collected vectors are deduplicated and greedily compacted with
    the fault simulator.
    """
    from repro.core.gnor import InputConfig
    from repro.logic.complement import complement_cover
    from repro.logic.cover import Cover as _Cover
    from repro.logic.cube import BIT_DASH, BIT_ONE, BIT_ZERO, Cube as _Cube

    n = config.n_inputs
    faults = enumerate_faults(config)

    # rebuild the product cubes and per-output groupings from the config
    product_cubes: List[_Cube] = []
    for r in range(config.n_products):
        inputs = 0
        for i in range(n):
            programmed = config.and_plane[r][i]
            if programmed is InputConfig.INVERT:   # literal x
                field = BIT_ONE
            elif programmed is InputConfig.PASS:   # literal ~x
                field = BIT_ZERO
            else:
                field = BIT_DASH
            inputs |= field << (2 * i)
        product_cubes.append(_Cube(n, inputs, 1, 1))
    outputs_of_row = [set() for _ in range(config.n_products)]
    rows_of_output: List[List[int]] = []
    for k in range(config.n_outputs):
        rows = [r for r in range(config.n_products)
                if config.or_plane[k][r] is not InputConfig.DROP]
        rows_of_output.append(rows)
        for r in rows:
            outputs_of_row[r].add(k)

    def off_minterm(k: int) -> Optional[List[int]]:
        cover_k = _Cover(n, 1, [product_cubes[r]
                                for r in rows_of_output[k]])
        return _minterm_of(complement_cover(cover_k))

    tests: List[List[int]] = []
    seen: set = set()

    def add(vector: Optional[List[int]]) -> None:
        if vector is None:
            return
        key = tuple(vector)
        if key not in seen:
            seen.add(key)
            tests.append(list(vector))

    for fault in faults:
        if fault.site is FaultSite.OR:
            k, r = fault.column, fault.row
            if fault.stuck_on:
                add(off_minterm(k))
            else:
                others = [product_cubes[q] for q in rows_of_output[k]
                          if q != r]
                add(_and_not_others(product_cubes[r], others, n))
        else:
            r, i = fault.row, fault.column
            if fault.stuck_on:
                for k in outputs_of_row[r]:
                    others = [product_cubes[q] for q in rows_of_output[k]
                              if q != r]
                    vector = _and_not_others(product_cubes[r], others, n)
                    if vector is not None:
                        add(vector)
                        break
            else:
                field = (product_cubes[r].inputs >> (2 * i)) & 0b11
                if field == BIT_DASH:
                    continue  # redundant (skipped by enumerate anyway)
                flipped_inputs = product_cubes[r].inputs ^ (0b11 << (2 * i))
                # the faulty-only region: literal i flipped
                flipped = _Cube(n, (product_cubes[r].inputs
                                    | (0b11 << (2 * i)))
                                & ~(0b11 << (2 * i))
                                | ((BIT_ONE if field == BIT_ZERO
                                    else BIT_ZERO) << (2 * i)), 1, 1)
                for k in outputs_of_row[r]:
                    others = [product_cubes[q] for q in rows_of_output[k]]
                    vector = _and_not_others(flipped, others, n)
                    if vector is not None:
                        add(vector)
                        break

    # greedy compaction against the true detection matrix over `tests`
    detection = _detection_table(config, faults, tests)
    detectable: Set[int] = set()
    for caught in detection.values():
        detectable |= caught
    compact: List[List[int]] = []
    uncovered = set(detectable)
    while uncovered:
        best = max(detection, key=lambda ti: len(detection[ti] & uncovered))
        gain = detection[best] & uncovered
        if not gain:
            break
        compact.append(tests[best])
        uncovered -= gain

    detected = [faults[fi] for fi in sorted(detectable)]
    undetected = [faults[fi] for fi in range(len(faults))
                  if fi not in detectable]
    coverage = len(detectable) / len(faults) if faults else 1.0
    return ATPGResult(tests=compact, coverage=coverage, detected=detected,
                      undetected=undetected, candidate_pool_size=len(tests))
