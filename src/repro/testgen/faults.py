"""Crosspoint fault model and symbolic fault simulation.

Faults are modelled on the *programmed* array: every crosspoint device
of a :class:`~repro.mapping.gnor_map.GNORPlaneConfig` can be stuck off
(open tubes / lost PG charge) or stuck on (metallic short).  The
simulator evaluates the two-plane GNOR semantics directly on the
configuration — no device objects — so sweeping thousands of
(vector, fault) pairs stays fast.

Effect of each fault:

=============  =========================  =================================
plane          stuck off                  stuck on
=============  =========================  =================================
AND (r, i)     input ``i`` dropped from   row ``r`` pinned low (product
               product ``r``              term dead)
OR (k, r)      product ``r`` dropped      output column ``k``'s NOR pinned
               from output ``k``          low
=============  =========================  =================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.gnor import InputConfig
from repro.mapping.gnor_map import GNORPlaneConfig


class FaultSite(enum.Enum):
    """Which plane the faulty crosspoint sits in."""

    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class Fault:
    """One single-crosspoint fault.

    Attributes
    ----------
    site:
        AND or OR plane.
    row:
        Product row of the crosspoint.
    column:
        AND plane: input column; OR plane: output column.
    stuck_on:
        True = metallic short (always conducts); False = stuck off.
    """

    site: FaultSite
    row: int
    column: int
    stuck_on: bool

    def __str__(self) -> str:
        kind = "stuck-on" if self.stuck_on else "stuck-off"
        return f"{self.site.value}[{self.row},{self.column}] {kind}"


def enumerate_faults(config: GNORPlaneConfig,
                     include_redundant: bool = False) -> List[Fault]:
    """All single faults of a programmed configuration.

    By default, trivially-redundant faults are skipped: a stuck-off
    device at a DROP position changes nothing (it never conducted), so
    no test can — or needs to — detect it.
    """
    faults: List[Fault] = []
    for r in range(config.n_products):
        for i in range(config.n_inputs):
            programmed = config.and_plane[r][i]
            faults.append(Fault(FaultSite.AND, r, i, stuck_on=True))
            if include_redundant or programmed is not InputConfig.DROP:
                faults.append(Fault(FaultSite.AND, r, i, stuck_on=False))
    for k in range(config.n_outputs):
        for r in range(config.n_products):
            programmed = config.or_plane[k][r]
            faults.append(Fault(FaultSite.OR, r, k, stuck_on=True))
            if include_redundant or programmed is not InputConfig.DROP:
                faults.append(Fault(FaultSite.OR, r, k, stuck_on=False))
    return faults


class FaultSimulator:
    """Fast symbolic evaluation of a configuration, healthy or faulty."""

    def __init__(self, config: GNORPlaneConfig):
        self.config = config

    # ------------------------------------------------------------------
    def _device_conducts(self, programmed: InputConfig, value: int) -> bool:
        if programmed is InputConfig.PASS:
            return bool(value)
        if programmed is InputConfig.INVERT:
            return not value
        return False

    def product_rows(self, vector: Sequence[int],
                     fault: Optional[Fault] = None) -> List[int]:
        """AND-plane row values under an optional fault."""
        rows: List[int] = []
        for r in range(self.config.n_products):
            pulled = False
            for i in range(self.config.n_inputs):
                if fault is not None and fault.site is FaultSite.AND \
                        and fault.row == r and fault.column == i:
                    if fault.stuck_on:
                        pulled = True
                        break
                    continue  # stuck off: contributes nothing
                if self._device_conducts(self.config.and_plane[r][i],
                                         vector[i]):
                    pulled = True
                    break
            rows.append(0 if pulled else 1)
        return rows

    def evaluate(self, vector: Sequence[int],
                 fault: Optional[Fault] = None) -> List[int]:
        """Output vector under an optional single fault."""
        if len(vector) != self.config.n_inputs:
            raise ValueError(f"expected {self.config.n_inputs} inputs")
        rows = self.product_rows(vector, fault)
        outputs: List[int] = []
        for k in range(self.config.n_outputs):
            pulled = False
            for r in range(self.config.n_products):
                if fault is not None and fault.site is FaultSite.OR \
                        and fault.column == k and fault.row == r:
                    if fault.stuck_on:
                        pulled = True
                        break
                    continue
                if self._device_conducts(self.config.or_plane[k][r],
                                         rows[r]):
                    pulled = True
                    break
            nor_value = 0 if pulled else 1
            outputs.append(1 - nor_value if self.config.output_inverted[k]
                           else nor_value)
        return outputs

    def detects(self, vector: Sequence[int], fault: Fault) -> bool:
        """Whether ``vector`` distinguishes the faulty machine."""
        return self.evaluate(vector) != self.evaluate(vector, fault)

    def fault_signature(self, vectors: Sequence[Sequence[int]],
                        fault: Fault) -> tuple:
        """Per-vector detection bits (used for fault *location*)."""
        return tuple(1 if self.detects(vector, fault) else 0
                     for vector in vectors)
